package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"proxystore/internal/kvstore"
)

func newServer(t *testing.T, opts ...kvstore.ServerOption) *kvstore.Server {
	t.Helper()
	srv, err := kvstore.NewServer("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestIsSpec(t *testing.T) {
	for addr, want := range map[string]bool{
		"127.0.0.1:6379":                 false,
		"a:1,b:2":                        true,
		"a:1|b:2":                        true,
		"a:1|b:2,c:3":                    true,
		"[::1]:6379":                     false,
		"kv.internal:6379":               false,
		"kv1.internal:6379,kv2.internal": true,
	} {
		if got := IsSpec(addr); got != want {
			t.Errorf("IsSpec(%q) = %v, want %v", addr, got, want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	shards, err := ParseSpec("a:1|b:2, c:3")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(shards) != 2 || len(shards[0]) != 2 || len(shards[1]) != 1 {
		t.Fatalf("ParseSpec = %v", shards)
	}
	if shards[0][0] != "a:1" || shards[0][1] != "b:2" || shards[1][0] != "c:3" {
		t.Fatalf("ParseSpec = %v", shards)
	}
	if _, err := ParseSpec("a:1,,b:2"); err == nil {
		t.Fatal("ParseSpec accepted an empty shard")
	}
}

func TestPlacementKey(t *testing.T) {
	for key, want := range map[string]string{
		"ps:orders:e:7":    "ps:orders",
		"ps:orders:head":   "ps:orders",
		"ps:orders:e:":     "ps:orders",
		"ps:orders":        "ps:orders",
		"plain":            "plain",
		"one:colon":        "one:colon",
		"ps:t1:x vs ps:t2": "ps:t1",
	} {
		if got := placementKey(key); got != want {
			t.Errorf("placementKey(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestPlacementDeterministic: two clients with the same spec agree on
// every key's shard, and all of one topic's keys land together.
func TestPlacementDeterministic(t *testing.T) {
	spec := "a:1|b:2,c:3,d:4"
	sc1, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sc1.Close()
	sc2, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sc2.Close()
	hits := make(map[*shard]int)
	for i := 0; i < 100; i++ {
		topic := fmt.Sprintf("ps:topic%d", i)
		sh := sc1.shardFor(topic + ":e:0")
		if sc1.shardFor(topic+":head") != sh || sc1.shardFor(topic+":e:") != sh {
			t.Fatalf("topic %q keys split across shards", topic)
		}
		if sc1.shards[indexOf(t, sc1, sh)] != sh {
			t.Fatal("shard bookkeeping broken")
		}
		if indexOf(t, sc2, sc2.shardFor(topic+":e:0")) != indexOf(t, sc1, sh) {
			t.Fatalf("clients disagree on placement of %q", topic)
		}
		hits[sh]++
	}
	if len(hits) != 3 {
		t.Fatalf("100 topics used %d of 3 shards", len(hits))
	}
}

func indexOf(t *testing.T, sc *ShardedClient, sh *shard) int {
	t.Helper()
	for i, s := range sc.shards {
		if s == sh {
			return i
		}
	}
	t.Fatal("shard not found")
	return -1
}

func TestShardedOps(t *testing.T) {
	s1, s2 := newServer(t), newServer(t)
	sc, err := New(s1.Addr() + "," + s2.Addr())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sc.Close()
	ctx := context.Background()

	keys := make([]string, 0, 40)
	pairs := make(map[string][]byte)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("ps:t%d:e:0", i)
		keys = append(keys, key)
		if err := sc.Set(ctx, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
		pairs[fmt.Sprintf("ps:t%d:meta", i)] = []byte("m")
		keys = append(keys, fmt.Sprintf("ps:t%d:meta", i))
	}
	if err := sc.MSet(ctx, pairs); err != nil {
		t.Fatalf("MSet: %v", err)
	}
	vals, err := sc.MGet(ctx, keys...)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	for i, key := range keys {
		if vals[i] == nil {
			t.Fatalf("MGet missed %q", key)
		}
	}
	// Both servers actually hold part of the keyspace.
	n1, err := kvDBSize(ctx, s1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	n2, err := kvDBSize(ctx, s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 || n2 == 0 {
		t.Fatalf("keys not spread: %d / %d", n1, n2)
	}
	if n1+n2 != int64(len(keys)) {
		t.Fatalf("key count %d+%d, want %d", n1, n2, len(keys))
	}

	if n, err := sc.Incr(ctx, "ps:t0:head"); err != nil || n != 1 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	if swapped, err := sc.CAS(ctx, "ps:t0:e:0", []byte("v0"), []byte("v0'")); err != nil || !swapped {
		t.Fatalf("CAS = %v, %v", swapped, err)
	}
	if n, err := sc.DelRange(ctx, "ps:t1:e:", 0, 5); err != nil || n != 1 {
		t.Fatalf("DelRange = %d, %v", n, err)
	}
	if n, err := sc.Del(ctx, keys...); err != nil || n != int64(len(keys)-1) {
		t.Fatalf("Del = %d, %v (want %d)", n, err, len(keys)-1)
	}
}

func kvDBSize(ctx context.Context, addr string) (int64, error) {
	c := kvstore.NewClient(addr)
	defer c.Close()
	return c.DBSize(ctx)
}

func TestShardedWaits(t *testing.T) {
	s1, s2 := newServer(t), newServer(t)
	sc, err := New(s1.Addr() + "," + s2.Addr())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sc.Close()
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		v, ok, err := sc.WaitGet(ctx, "ps:w:key", 3*time.Second)
		if err == nil && (!ok || string(v) != "x") {
			err = fmt.Errorf("WaitGet = %q, %v", v, ok)
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := sc.Set(ctx, "ps:w:key", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("WaitGet through shard router: %v", err)
	}
}

func TestShardedPipeline(t *testing.T) {
	s1, s2 := newServer(t), newServer(t)
	sc, err := New(s1.Addr() + "," + s2.Addr())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sc.Close()
	ctx := context.Background()

	pipe := sc.Pipeline()
	setRep := pipe.Set("ps:p:e:0", []byte("a"))
	incRep := pipe.Incr("ps:p:head")
	if err := pipe.Exec(ctx); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if err := setRep.Err(); err != nil {
		t.Fatalf("pipelined Set: %v", err)
	}
	if n, err := incRep.Int(); err != nil || n != 1 {
		t.Fatalf("pipelined Incr = %d, %v", n, err)
	}

	// A batch whose keys place on different shards must be refused.
	var cross *kvstore.Pipeline
	for i := 1; ; i++ {
		other := fmt.Sprintf("ps:q%d:e:0", i)
		if sc.shardFor(other) != sc.shardFor("ps:p:e:0") {
			cross = sc.Pipeline()
			cross.Set("ps:p:e:1", []byte("a"))
			cross.Set(other, []byte("b"))
			break
		}
	}
	err = cross.Exec(ctx)
	if err == nil || !strings.Contains(err.Error(), "spans shards") {
		t.Fatalf("cross-shard pipeline Exec = %v, want spans-shards error", err)
	}
}

// TestShardedFailover: a shard with a real replicating pair keeps serving
// through the primary's death — the router fails over, promotes, and the
// replicated state is all there.
func TestShardedFailover(t *testing.T) {
	dir := t.TempDir()
	prim := newServer(t, kvstore.WithPersistence(filepath.Join(dir, "p.aof")))
	repl := newServer(t,
		kvstore.WithPersistence(filepath.Join(dir, "r.aof")),
		kvstore.WithReplicaOf(prim.Addr()))
	_ = repl
	sc, err := New(prim.Addr() + "|" + repl.Addr())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sc.Close()
	ctx := context.Background()

	for i := 0; i < 50; i++ {
		if err := sc.Set(ctx, fmt.Sprintf("ps:f:e:%d", i), []byte("v")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := prim.Close(); err != nil {
		t.Fatalf("primary Close: %v", err)
	}
	// Reads and writes keep working via the promoted replica.
	v, ok, err := sc.Get(ctx, "ps:f:e:49")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after failover = %q, %v, %v", v, ok, err)
	}
	if err := sc.Set(ctx, "ps:f:e:50", []byte("post")); err != nil {
		t.Fatalf("Set after failover: %v", err)
	}
	// Pipelines fail over too: the first Exec may fail (reporting the
	// transport error), the retry must land.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		pipe := sc.Pipeline()
		pipe.Set("ps:f:e:51", []byte("piped"))
		if lastErr = pipe.Exec(ctx); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("pipeline never recovered after failover: %v", lastErr)
	}
	v, ok, err = sc.Get(ctx, "ps:f:e:51")
	if err != nil || !ok || string(v) != "piped" {
		t.Fatalf("piped write lost: %q, %v, %v", v, ok, err)
	}
}
