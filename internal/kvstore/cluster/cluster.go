// Package cluster routes kvstore commands across a sharded, replicated
// tier of kvstore servers behind the same client surface a single server
// presents (kvstore.KV).
//
// # Topology and spec
//
// A cluster is described by one address string, so it fits anywhere a
// single server address already travels (flags, broker constructors):
//
//	shard , shard , ...          shards separated by commas
//	addr | addr | ...            replicas within a shard by pipes
//
// e.g. "10.0.0.1:6379|10.0.0.2:6379,10.0.1.1:6379" is two shards, the
// first with one replica. The first address in a shard is its initial
// primary; the others are replicas started with -replica-of (they serve
// reads and are promoted on failover).
//
// # Placement
//
// Keys are placed by topic prefix: the placement key is everything up to
// the second ':' (so "ps:orders:e:7", "ps:orders:head", and a WAITPREFIX
// on "ps:orders:e:" all share the placement key "ps:orders"). Each shard
// projects virtual points onto an FNV-1a ring; a key maps to the first
// point clockwise from its hash. Placement is a pure function of the spec
// string, so every process with the same spec agrees — and it never moves
// on failover, because the ring hashes the shard's replica-set spec, not
// whoever is primary today.
//
// Everything a broker derives from one topic therefore lands on one
// shard: single-key commands, DELRANGE sweeps, WAITPREFIX parks, and
// pipelined ack batches are all shard-local, which is what makes
// independent topics scale linearly with shards. Multi-key commands are
// grouped by shard and fanned out; a pipeline whose keys span shards is
// an error.
//
// # Failover
//
// A transport error (the server is unreachable — not an error reply, see
// kvstore.ReplyError) advances the shard to its next replica, sends it a
// best-effort PROMOTE, and retries. A write that reaches a still-readonly
// replica ("ERR readonly replica") promotes it in place and retries, so
// the client-driven and stream-break-driven promotion paths can race
// without stranding a command.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"proxystore/internal/kvstore"
)

// vpoints is how many virtual ring points each shard projects; enough to
// spread placement keys evenly across small shard counts.
const vpoints = 64

// promoteTimeout bounds the best-effort PROMOTE sent during failover.
const promoteTimeout = 2 * time.Second

// IsSpec reports whether addr names a cluster (shards and/or replicas)
// rather than a single server.
func IsSpec(addr string) bool {
	return strings.ContainsAny(addr, ",|")
}

// ParseSpec splits a cluster spec into its shards' replica address lists.
func ParseSpec(spec string) ([][]string, error) {
	var shards [][]string
	for _, shardSpec := range strings.Split(spec, ",") {
		var addrs []string
		for _, addr := range strings.Split(shardSpec, "|") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("cluster: empty address in spec %q", spec)
			}
			addrs = append(addrs, addr)
		}
		shards = append(shards, addrs)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: empty spec")
	}
	return shards, nil
}

// shard is one replica set: clients for every member, and which member
// commands currently go to.
type shard struct {
	spec    string // the shard's piece of the spec, for ring hashing
	clients []*kvstore.Client

	mu  sync.Mutex
	cur int
}

func (s *shard) client() *kvstore.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clients[s.cur]
}

// advanceFrom moves to the next replica if failed is still current (a
// concurrent failover may already have moved on), returning the new
// current client.
func (s *shard) advanceFrom(failed *kvstore.Client) *kvstore.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients[s.cur] == failed {
		s.cur = (s.cur + 1) % len(s.clients)
	}
	return s.clients[s.cur]
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ShardedClient implements kvstore.KV across a sharded, replicated tier.
type ShardedClient struct {
	shards []*shard
	ring   []ringPoint
}

var _ kvstore.KV = (*ShardedClient)(nil)

// New builds a sharded client from a spec (see the package doc), passing
// opts through to every member's kvstore.Client.
func New(spec string, opts ...kvstore.ClientOption) (*ShardedClient, error) {
	groups, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	sc := &ShardedClient{}
	for i, addrs := range groups {
		sh := &shard{spec: strings.Join(addrs, "|")}
		for _, addr := range addrs {
			sh.clients = append(sh.clients, kvstore.NewClient(addr, opts...))
		}
		sc.shards = append(sc.shards, sh)
		for v := 0; v < vpoints; v++ {
			sc.ring = append(sc.ring, ringPoint{
				hash:  fnvHash(sh.spec + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(sc.ring, func(a, b int) bool { return sc.ring[a].hash < sc.ring[b].hash })
	return sc, nil
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV of similar short strings clusters in the high bits; a 64-bit
	// finalizer (murmur3 fmix64) scatters the points across the ring.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// placementKey reduces a key to its topic-prefix placement unit:
// everything up to the second ':' (the whole key when it has fewer).
func placementKey(key string) string {
	if i := strings.IndexByte(key, ':'); i >= 0 {
		if j := strings.IndexByte(key[i+1:], ':'); j >= 0 {
			return key[:i+1+j]
		}
	}
	return key
}

// shardFor maps a key to its shard.
func (sc *ShardedClient) shardFor(key string) *shard {
	if len(sc.shards) == 1 {
		return sc.shards[0]
	}
	h := fnvHash(placementKey(key))
	i := sort.Search(len(sc.ring), func(i int) bool { return sc.ring[i].hash >= h })
	if i == len(sc.ring) {
		i = 0
	}
	return sc.shards[sc.ring[i].shard]
}

// NumShards returns the shard count (for bench/introspection).
func (sc *ShardedClient) NumShards() int { return len(sc.shards) }

// promote asks c (best-effort, bounded) to start accepting writes.
func promote(c *kvstore.Client) {
	ctx, cancel := context.WithTimeout(context.Background(), promoteTimeout)
	defer cancel()
	c.Promote(ctx) // ignore the error: the retry tells us if it worked
}

// doShard runs fn against the shard's current client, failing over
// through its replicas on transport errors. Error replies are returned
// as-is — the server answered; asking another one would be wrong — with
// one exception: a write refused by a not-yet-promoted replica promotes
// it in place and retries.
func doShard(ctx context.Context, sh *shard, fn func(*kvstore.Client) error) error {
	var err error
	for attempt := 0; attempt <= len(sh.clients); attempt++ {
		c := sh.client()
		err = fn(c)
		if err == nil || ctx.Err() != nil {
			return err
		}
		if kvstore.IsReplyError(err) {
			if strings.Contains(err.Error(), "readonly replica") {
				promote(c)
				continue
			}
			return err
		}
		if next := sh.advanceFrom(c); next != c {
			promote(next)
		}
	}
	return err
}

func (sc *ShardedClient) doKey(ctx context.Context, key string, fn func(*kvstore.Client) error) error {
	return doShard(ctx, sc.shardFor(key), fn)
}

// Ping checks every shard's current member.
func (sc *ShardedClient) Ping(ctx context.Context) error {
	for _, sh := range sc.shards {
		if err := doShard(ctx, sh, func(c *kvstore.Client) error { return c.Ping(ctx) }); err != nil {
			return err
		}
	}
	return nil
}

func (sc *ShardedClient) Set(ctx context.Context, key string, val []byte) error {
	return sc.doKey(ctx, key, func(c *kvstore.Client) error { return c.Set(ctx, key, val) })
}

func (sc *ShardedClient) Get(ctx context.Context, key string) (val []byte, ok bool, err error) {
	err = sc.doKey(ctx, key, func(c *kvstore.Client) error {
		val, ok, err = c.Get(ctx, key)
		return err
	})
	return val, ok, err
}

func (sc *ShardedClient) Incr(ctx context.Context, key string) (n int64, err error) {
	err = sc.doKey(ctx, key, func(c *kvstore.Client) error {
		n, err = c.Incr(ctx, key)
		return err
	})
	return n, err
}

func (sc *ShardedClient) IncrBy(ctx context.Context, key string, delta int64) (n int64, err error) {
	err = sc.doKey(ctx, key, func(c *kvstore.Client) error {
		n, err = c.IncrBy(ctx, key, delta)
		return err
	})
	return n, err
}

func (sc *ShardedClient) CAS(ctx context.Context, key string, old, new []byte) (swapped bool, err error) {
	err = sc.doKey(ctx, key, func(c *kvstore.Client) error {
		swapped, err = c.CAS(ctx, key, old, new)
		return err
	})
	return swapped, err
}

func (sc *ShardedClient) DelRange(ctx context.Context, prefix string, start, end uint64) (n int64, err error) {
	err = sc.doKey(ctx, prefix, func(c *kvstore.Client) error {
		n, err = c.DelRange(ctx, prefix, start, end)
		return err
	})
	return n, err
}

func (sc *ShardedClient) WaitGet(ctx context.Context, key string, timeout time.Duration) (val []byte, ok bool, err error) {
	err = sc.doKey(ctx, key, func(c *kvstore.Client) error {
		val, ok, err = c.WaitGet(ctx, key, timeout)
		return err
	})
	return val, ok, err
}

func (sc *ShardedClient) WaitPrefix(ctx context.Context, prefix string, after uint64, timeout time.Duration) (seq uint64, err error) {
	err = sc.doKey(ctx, prefix, func(c *kvstore.Client) error {
		seq, err = c.WaitPrefix(ctx, prefix, after, timeout)
		return err
	})
	return seq, err
}

// Del deletes keys, grouped and fanned out by shard; returns the total
// number that existed.
func (sc *ShardedClient) Del(ctx context.Context, keys ...string) (int64, error) {
	var total int64
	for sh, group := range sc.groupKeys(keys) {
		var n int64
		err := doShard(ctx, sh, func(c *kvstore.Client) error {
			var err error
			n, err = c.Del(ctx, group...)
			return err
		})
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// MGet fetches keys grouped by shard, reassembling replies in argument
// order (nil for missing keys, matching Client.MGet).
func (sc *ShardedClient) MGet(ctx context.Context, keys ...string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	byShard := make(map[*shard][]int)
	for i, key := range keys {
		sh := sc.shardFor(key)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idxs := range byShard {
		group := make([]string, len(idxs))
		for j, i := range idxs {
			group[j] = keys[i]
		}
		var vals [][]byte
		err := doShard(ctx, sh, func(c *kvstore.Client) error {
			var err error
			vals, err = c.MGet(ctx, group...)
			return err
		})
		if err != nil {
			return nil, err
		}
		if len(vals) != len(idxs) {
			return nil, fmt.Errorf("cluster: MGET returned %d values for %d keys", len(vals), len(idxs))
		}
		for j, i := range idxs {
			out[i] = vals[j]
		}
	}
	return out, nil
}

// MSet writes pairs grouped by shard.
func (sc *ShardedClient) MSet(ctx context.Context, pairs map[string][]byte) error {
	byShard := make(map[*shard]map[string][]byte)
	for key, val := range pairs {
		sh := sc.shardFor(key)
		group := byShard[sh]
		if group == nil {
			group = make(map[string][]byte)
			byShard[sh] = group
		}
		group[key] = val
	}
	for sh, group := range byShard {
		if err := doShard(ctx, sh, func(c *kvstore.Client) error { return c.MSet(ctx, group) }); err != nil {
			return err
		}
	}
	return nil
}

func (sc *ShardedClient) groupKeys(keys []string) map[*shard][]string {
	groups := make(map[*shard][]string)
	for _, key := range keys {
		sh := sc.shardFor(key)
		groups[sh] = append(groups[sh], key)
	}
	return groups
}

// Pipeline returns a routed pipeline: the target shard is resolved from
// the queued commands' keys at Exec time (they must all place on one
// shard — brokers batch per topic, so they do), and a transport failure
// fails the shard over so the caller's retry lands on the promoted
// replica.
func (sc *ShardedClient) Pipeline() *kvstore.Pipeline {
	var (
		mu     sync.Mutex
		target *shard
		used   *kvstore.Client
	)
	pick := func(keys [][]byte) (*kvstore.Client, error) {
		if len(keys) == 0 {
			return nil, fmt.Errorf("cluster: pipeline has no keyed commands to route by")
		}
		sh := sc.shardFor(string(keys[0]))
		for _, key := range keys[1:] {
			if sc.shardFor(string(key)) != sh {
				return nil, fmt.Errorf("cluster: pipeline spans shards (key %q places off shard of %q)", key, keys[0])
			}
		}
		mu.Lock()
		defer mu.Unlock()
		target = sh
		used = sh.client()
		return used, nil
	}
	onErr := func(error) {
		mu.Lock()
		sh, c := target, used
		mu.Unlock()
		if sh == nil {
			return
		}
		if next := sh.advanceFrom(c); next != c {
			promote(next)
		}
	}
	return kvstore.NewRoutedPipeline(pick, onErr)
}

// Dials sums connection dials across every member client.
func (sc *ShardedClient) Dials() (n uint64) {
	for _, sh := range sc.shards {
		for _, c := range sh.clients {
			n += c.Dials()
		}
	}
	return n
}

// RoundTrips sums request round trips across every member client.
func (sc *ShardedClient) RoundTrips() (n uint64) {
	for _, sh := range sc.shards {
		for _, c := range sh.clients {
			n += c.RoundTrips()
		}
	}
	return n
}

// Close closes every member client.
func (sc *ShardedClient) Close() error {
	var errs []error
	for _, sh := range sc.shards {
		for _, c := range sh.clients {
			if err := c.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
