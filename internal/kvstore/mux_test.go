package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Many concurrent blocking waits on one client must share the single
// multiplexer connection: the dial count stays O(1) no matter how many
// waits are parked.
func TestManyWaitsShareOneMuxConnection(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	const waiters = 16
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, ok, err := cli.WaitGet(ctx, fmt.Sprintf("mux-%d", i), 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if !ok || string(val) != fmt.Sprintf("v%d", i) {
				errs <- fmt.Errorf("wait %d = %q, %v", i, val, ok)
			}
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // park all waits on the mux conn
	if got := cli.Dials(); got != 1 {
		t.Fatalf("%d parked waits dialed %d connections, want 1 (the mux conn)", waiters, got)
	}
	for i := 0; i < waiters; i++ {
		if err := cli.Set(ctx, fmt.Sprintf("mux-%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Mixed tagged waits — WAITGET and WAITPREFIX — interleave on the one mux
// connection and resolve out of order without crosstalk.
func TestMuxInterleavesGetAndPrefixWaits(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.Set(ctx, "boot", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	seq, err := cli.WaitPrefix(ctx, "log:", 0, time.Second)
	if err != nil {
		t.Fatalf("seed WaitPrefix: %v", err)
	}

	type res struct {
		what string
		err  error
	}
	got := make(chan res, 2)
	go func() {
		val, ok, err := cli.WaitGet(ctx, "slow", 10*time.Second)
		if err == nil && (!ok || string(val) != "later") {
			err = fmt.Errorf("WaitGet = %q, %v", val, ok)
		}
		got <- res{"get", err}
	}()
	go func() {
		s, err := cli.WaitPrefix(ctx, "log:", seq, 10*time.Second)
		if err == nil && s <= seq {
			err = fmt.Errorf("sequence did not advance past %d", seq)
		}
		got <- res{"prefix", err}
	}()
	time.Sleep(100 * time.Millisecond)
	// Resolve the prefix wait first, then the get: replies come back in
	// resolution order, not submission order.
	if err := cli.Set(ctx, "log:1", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	first := <-got
	if first.err != nil {
		t.Fatalf("%s wait: %v", first.what, first.err)
	}
	if first.what != "prefix" {
		t.Fatalf("first resolved wait = %s, want prefix", first.what)
	}
	if err := cli.Set(ctx, "slow", []byte("later")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	second := <-got
	if second.err != nil {
		t.Fatalf("%s wait: %v", second.what, second.err)
	}
}

// A context-cancelled wait abandons its tag; the shared connection must
// stay healthy for the other parked waits, and the late reply for the
// abandoned tag must be dropped silently.
func TestMuxCancelledWaitLeavesConnectionHealthy(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.Ping(ctx); err != nil { // establish the pooled conn up front
		t.Fatalf("Ping: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancelled := make(chan error, 1)
	go func() {
		_, _, err := cli.WaitGet(cctx, "abandoned", 10*time.Second)
		cancelled <- err
	}()
	kept := make(chan error, 1)
	go func() {
		val, ok, err := cli.WaitGet(ctx, "kept", 10*time.Second)
		if err == nil && (!ok || string(val) != "v") {
			err = fmt.Errorf("WaitGet = %q, %v", val, ok)
		}
		kept <- err
	}()
	time.Sleep(100 * time.Millisecond)
	dials := cli.Dials()
	cancel()
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait = %v, want context.Canceled", err)
	}
	// The surviving wait resolves on the same connection.
	if err := cli.Set(ctx, "kept", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := <-kept; err != nil {
		t.Fatalf("surviving wait: %v", err)
	}
	// Fill the abandoned key too: its tagged reply arrives with a tag
	// nobody claims and must not disturb the next wait.
	if err := cli.Set(ctx, "abandoned", []byte("late")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if val, ok, err := cli.WaitGet(ctx, "kept", time.Second); err != nil || !ok || string(val) != "v" {
		t.Fatalf("post-late-reply WaitGet = %q, %v, %v", val, ok, err)
	}
	if got := cli.Dials(); got != dials {
		t.Fatalf("cancellation churned connections (%d -> %d dials)", dials, got)
	}
}

// Against a server that has blocking waits but predates the tagged
// variants, the client must latch onto the untagged protocol after one
// unknown-command reply and keep working transparently.
func TestWaitGetFallsBackOnServerWithoutTaggedWaits(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", WithoutTaggedWaits())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(srv.Addr())
	t.Cleanup(func() { cli.Close() })
	ctx := context.Background()

	// Value already present: the fallback wait returns it.
	if err := cli.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if val, ok, err := cli.WaitGet(ctx, "k", time.Second); err != nil || !ok || string(val) != "v" {
		t.Fatalf("WaitGet via fallback = %q, %v, %v", val, ok, err)
	}
	if !cli.muxOff.Load() {
		t.Fatal("client did not latch the mux off after unknown-command")
	}
	// A parked fallback wait still wakes on a write.
	got := make(chan error, 1)
	go func() {
		val, ok, err := cli.WaitGet(ctx, "late", 10*time.Second)
		if err == nil && (!ok || string(val) != "x") {
			err = fmt.Errorf("WaitGet = %q, %v", val, ok)
		}
		got <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := cli.Set(ctx, "late", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := <-got; err != nil {
		t.Fatalf("parked fallback wait: %v", err)
	}
	// WaitPrefix falls back too (muxOff is already latched — no second
	// detection round trip).
	if _, err := cli.WaitPrefix(ctx, "p", 0, time.Second); err != nil {
		t.Fatalf("WaitPrefix via fallback: %v", err)
	}
}

// A server restart mid-wait fails the parked waits with a transport error
// (not a hang); re-issued waits against the restarted server must park on
// a fresh mux connection and resolve.
func TestMuxWaitsResumeAcrossServerRestart(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	cli := NewClient(srv.Addr())
	t.Cleanup(func() { cli.Close() })
	ctx := context.Background()
	parked := make(chan error, 1)
	go func() {
		_, _, err := cli.WaitGet(ctx, "k", 10*time.Second)
		parked <- err
	}()
	time.Sleep(100 * time.Millisecond)
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-parked:
		if err == nil {
			t.Fatal("wait across server death returned success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait did not fail when the server died")
	}
	srv2, err := NewServer(addr)
	if err != nil {
		t.Fatalf("restart NewServer: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	resumed := make(chan error, 1)
	go func() {
		val, ok, err := cli.WaitGet(ctx, "k", 10*time.Second)
		if err == nil && (!ok || string(val) != "back") {
			err = fmt.Errorf("WaitGet = %q, %v", val, ok)
		}
		resumed <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if err := cli.Set(ctx, "k", []byte("back")); err != nil {
		t.Fatalf("Set after restart: %v", err)
	}
	if err := <-resumed; err != nil {
		t.Fatalf("re-issued wait after restart: %v", err)
	}
}
