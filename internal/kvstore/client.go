package kvstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/netsim"
	"proxystore/internal/telemetry"
)

// ErrUnknownCommand wraps server replies to commands the server does not
// implement, so callers talking to an older server can detect the
// condition with errors.Is and fall back (e.g. pstream's push delivery
// degrading to its polling loop).
var ErrUnknownCommand = errors.New("unknown command")

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithPoolSize sets the maximum number of pooled connections (default 4).
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithClientNetwork attaches a netsim model: every request pays the modeled
// transfer time from the client's site to the server's site for the request
// payload, and back for the response payload.
func WithClientNetwork(n *netsim.Network, clientSite, serverSite string) ClientOption {
	return func(c *Client) {
		c.net = n
		c.clientSite = clientSite
		c.serverSite = serverSite
	}
}

// WithDialTimeout bounds connection establishment (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.dialTimeout = d }
}

// WithDialFunc replaces the client's dialer: every connection the client
// establishes — pooled request connections, the wait multiplexer's shared
// connection, and every reconnect after a broken one — flows through fn
// instead of a net.Dialer. The dial timeout is applied as a deadline on
// ctx, which fn should honor. This is the interposition point for
// connection-level taps and in-process transports; no TCP proxy needed.
func WithDialFunc(fn func(ctx context.Context, network, addr string) (net.Conn, error)) ClientOption {
	return func(c *Client) { c.dialFunc = fn }
}

// WithClientTelemetry makes the client record its metrics (RTTs, pool
// waits, mux fallbacks, pipeline depth) into reg instead of a private
// registry.
func WithClientTelemetry(reg *telemetry.Registry) ClientOption {
	return func(c *Client) { c.reg = reg }
}

// Client is a pooled RESP2 client.
//
// A Client is safe for concurrent use; each in-flight request holds one
// pooled connection.
type Client struct {
	addr        string
	poolSize    int
	dialTimeout time.Duration
	dialFunc    func(ctx context.Context, network, addr string) (net.Conn, error)

	net        *netsim.Network
	clientSite string
	serverSite string

	mu      sync.Mutex
	idle    []*clientConn
	total   int
	closed  bool
	waiters []chan poolGrant

	// mux parks all tagged blocking waits on one shared connection; muxOff
	// latches when the server answers tagged waits with unknown-command, so
	// a legacy server pays the detection round trip once per client.
	mux    *waitMux
	muxOff atomic.Bool

	dials      atomic.Uint64
	roundTrips atomic.Uint64

	// reg collects client metrics; the handles below are resolved once at
	// construction so hot paths skip the registry's name lookup.
	reg          *telemetry.Registry
	mRTT         *telemetry.Histogram // kvc.rtt.ns: flush → last reply read
	mWait        *telemetry.Histogram // kvc.wait.ns: blocking-wait park time
	mPoolWaitNs  *telemetry.Histogram // kvc.pool.wait.ns: time parked for a conn
	mPoolWaits   *telemetry.Counter   // kvc.pool.waits
	mMuxFallback *telemetry.Counter   // kvc.mux.fallbacks
	mPipeDepth   *telemetry.Histogram // kvc.pipeline.depth: commands per Exec
	mDials       *telemetry.Counter   // kvc.dials (mirrors Dials())
	mTrips       *telemetry.Counter   // kvc.round_trips (mirrors RoundTrips())
}

// poolGrant is what a parked acquirer receives: a connection handed off
// directly, a permit to dial (capacity already reserved on its behalf), or
// — both zero — the news that the client closed.
type poolGrant struct {
	cc     *clientConn
	permit bool
}

type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// NewClient returns a client for the server at addr. No connection is made
// until the first request.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{addr: addr, poolSize: 4, dialTimeout: 5 * time.Second}
	for _, o := range opts {
		o(c)
	}
	if c.reg == nil {
		c.reg = telemetry.NewRegistry()
	}
	c.mRTT = c.reg.Histogram("kvc.rtt.ns")
	c.mWait = c.reg.Histogram("kvc.wait.ns")
	c.mPoolWaitNs = c.reg.Histogram("kvc.pool.wait.ns")
	c.mPoolWaits = c.reg.Counter("kvc.pool.waits")
	c.mMuxFallback = c.reg.Counter("kvc.mux.fallbacks")
	c.mPipeDepth = c.reg.Histogram("kvc.pipeline.depth")
	c.mDials = c.reg.Counter("kvc.dials")
	c.mTrips = c.reg.Counter("kvc.round_trips")
	c.mux = newWaitMux(c)
	return c
}

// Telemetry returns the client's metrics registry.
func (c *Client) Telemetry() *telemetry.Registry { return c.reg }

// trip counts one request flush in both the RoundTrips atomic and the
// registry.
func (c *Client) trip() {
	c.roundTrips.Add(1)
	c.mTrips.Inc()
}

// Close tears down all pooled connections and the wait multiplexer.
// In-flight requests fail; parked acquirers wake with an error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, cc := range c.idle {
		cc.conn.Close()
	}
	c.idle = nil
	for _, ch := range c.waiters {
		ch <- poolGrant{}
	}
	c.waiters = nil
	c.mu.Unlock()
	c.mux.close()
	return nil
}

// acquire hands out a pooled connection. When the pool is exhausted the
// caller parks in a FIFO queue and release hands its connection (or, when
// a connection broke, a permit to dial) directly to the queue head: every
// waiter is served in arrival order, a stream of fresh acquirers cannot
// starve a parked one, and context cancellation takes effect while parked
// — not merely on the next wake-up.
func (c *Client) acquire(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("kvstore: client closed")
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	if c.total < c.poolSize {
		c.total++
		c.mu.Unlock()
		return c.dialSlot(ctx)
	}
	ch := make(chan poolGrant, 1)
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	c.mPoolWaits.Inc()
	parked := time.Now()
	select {
	case g := <-ch:
		c.mPoolWaitNs.Since(parked)
		return c.redeem(ctx, g)
	case <-ctx.Done():
		c.mu.Lock()
		for i, w := range c.waiters {
			if w == ch {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				c.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		c.mu.Unlock()
		// A grant raced the cancellation: pass it on so the slot is not lost.
		g := <-ch
		if g.cc != nil {
			c.release(g.cc, false)
		} else if g.permit {
			c.releasePermit()
		}
		return nil, ctx.Err()
	}
}

// redeem converts a pool grant into a usable connection.
func (c *Client) redeem(ctx context.Context, g poolGrant) (*clientConn, error) {
	switch {
	case g.cc != nil:
		return g.cc, nil
	case g.permit:
		return c.dialSlot(ctx)
	default:
		return nil, fmt.Errorf("kvstore: client closed")
	}
}

// dialSlot dials with a pool slot already reserved (total incremented),
// unwinding the reservation — or passing it to the next waiter — on
// failure.
func (c *Client) dialSlot(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.total--
		c.mu.Unlock()
		return nil, fmt.Errorf("kvstore: client closed")
	}
	c.mu.Unlock()
	cc, err := c.dial(ctx)
	if err != nil {
		c.releasePermit()
		return nil, err
	}
	return cc, nil
}

// releasePermit gives up a reserved pool slot, handing it to the queue
// head as a dial permit if anyone is parked.
func (c *Client) releasePermit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total--
	if len(c.waiters) > 0 && !c.closed {
		ch := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.total++
		ch <- poolGrant{permit: true}
	}
}

func (c *Client) release(cc *clientConn, broken bool) {
	c.mu.Lock()
	if broken || c.closed {
		cc.conn.Close()
		c.total--
		if len(c.waiters) > 0 && !c.closed {
			ch := c.waiters[0]
			c.waiters = c.waiters[1:]
			c.total++
			ch <- poolGrant{permit: true}
		}
		c.mu.Unlock()
		return
	}
	if len(c.waiters) > 0 {
		ch := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.mu.Unlock()
		ch <- poolGrant{cc: cc}
		return
	}
	c.idle = append(c.idle, cc)
	c.mu.Unlock()
}

// Dials returns how many TCP connections the client has established —
// observable pool churn, so tests can assert that clean protocol events
// (like a timed-out blocking wait) do not burn and redial connections.
func (c *Client) Dials() uint64 { return c.dials.Load() }

// RoundTrips returns how many client→server request flushes the client has
// performed. A pipelined batch of N commands counts as one round trip per
// flushed window, so commands-per-round-trip (server Commands() over this)
// is the direct measure of how much the pipeline amortizes.
func (c *Client) RoundTrips() uint64 { return c.roundTrips.Load() }

func (c *Client) dial(ctx context.Context) (*clientConn, error) {
	var conn net.Conn
	var err error
	if c.dialFunc != nil {
		dctx, cancel := context.WithTimeout(ctx, c.dialTimeout)
		conn, err = c.dialFunc(dctx, "tcp", c.addr)
		cancel()
	} else {
		d := net.Dialer{Timeout: c.dialTimeout}
		conn, err = d.DialContext(ctx, "tcp", c.addr)
	}
	if err != nil {
		return nil, fmt.Errorf("kvstore: dialing %s: %w", c.addr, err)
	}
	c.dials.Add(1)
	c.mDials.Inc()
	return &clientConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

func (c *Client) delay(ctx context.Context, size int) error {
	if c.net == nil {
		return nil
	}
	return c.net.Delay(ctx, c.clientSite, c.serverSite, size)
}

// do sends one command and reads one reply.
func (c *Client) do(ctx context.Context, name string, args ...[]byte) (value, error) {
	reqSize := len(name)
	for _, a := range args {
		reqSize += len(a)
	}
	if err := c.delay(ctx, reqSize); err != nil {
		return value{}, err
	}

	cc, err := c.acquire(ctx)
	if err != nil {
		return value{}, err
	}
	if err := encodeCommand(cc.w, name, args...); err != nil {
		c.release(cc, true)
		return value{}, fmt.Errorf("kvstore: sending %s: %w", name, err)
	}
	sent := time.Now()
	if err := cc.w.Flush(); err != nil {
		c.release(cc, true)
		return value{}, fmt.Errorf("kvstore: sending %s: %w", name, err)
	}
	c.trip()
	v, err := readValue(cc.r)
	if err != nil {
		c.release(cc, true)
		return value{}, fmt.Errorf("kvstore: reading %s reply: %w", name, err)
	}
	c.mRTT.Since(sent)
	c.release(cc, false)

	respSize := len(v.bulk)
	for _, el := range v.arr {
		respSize += len(el.bulk)
	}
	if err := c.delay(ctx, respSize); err != nil {
		return value{}, err
	}
	if v.kind == respError {
		return value{}, serverError(v)
	}
	return v, nil
}

// ReplyError is an error reply the server deliberately sent (RESP "-ERR
// ..."), as opposed to a transport failure. The distinction drives
// failover: a sharded client retries transport errors on a replica, but a
// reply error means the server is alive and said no — retrying elsewhere
// would be wrong.
type ReplyError struct{ Msg string }

func (e *ReplyError) Error() string { return "kvstore: server error: " + e.Msg }

// Unwrap lets errors.Is(err, ErrUnknownCommand) keep detecting old
// servers through the typed reply error.
func (e *ReplyError) Unwrap() error {
	if strings.HasPrefix(e.Msg, "ERR unknown command") {
		return ErrUnknownCommand
	}
	return nil
}

// IsReplyError reports whether err is (or wraps) a server error reply.
func IsReplyError(err error) bool {
	var re *ReplyError
	return errors.As(err, &re)
}

// serverError converts a RESP error reply into a Go error, typed so
// callers can tell "the server answered with an error" apart from "the
// server is unreachable".
func serverError(v value) error {
	return &ReplyError{Msg: v.str}
}

// waitSlack is how long past the server-side wait timeout the client waits
// for the reply before declaring the connection dead. Generous: it only
// matters when the server vanished without closing the connection.
const waitSlack = 5 * time.Second

// doWait sends one blocking command and reads its (possibly long-delayed)
// reply on a dedicated pooled connection. Unlike do, the read is armed
// with a deadline — the server-side timeout plus slack — and context
// cancellation collapses that deadline so a caller can abandon a wait
// immediately (at the cost of the connection, which carries an
// unconsumed reply and cannot be pooled again).
func (c *Client) doWait(ctx context.Context, budget time.Duration, name string, args ...[]byte) (value, error) {
	reqSize := len(name)
	for _, a := range args {
		reqSize += len(a)
	}
	if err := c.delay(ctx, reqSize); err != nil {
		return value{}, err
	}

	cc, err := c.acquire(ctx)
	if err != nil {
		return value{}, err
	}
	if err := encodeCommand(cc.w, name, args...); err != nil {
		c.release(cc, true)
		return value{}, fmt.Errorf("kvstore: sending %s: %w", name, err)
	}
	if err := cc.w.Flush(); err != nil {
		c.release(cc, true)
		return value{}, fmt.Errorf("kvstore: sending %s: %w", name, err)
	}
	c.trip()
	sent := time.Now()
	defer c.mWait.Since(sent)

	cc.conn.SetReadDeadline(time.Now().Add(budget + waitSlack))
	watchDone := make(chan struct{})
	// fired reports whether the watcher collapsed the deadline; receiving
	// it joins the watcher, so no deadline write can race a later use of
	// the connection (e.g. after it returns to the pool).
	fired := make(chan bool, 1)
	go func() {
		select {
		case <-ctx.Done():
			// Interrupt the blocked read now instead of at the deadline.
			cc.conn.SetReadDeadline(time.Now())
			fired <- true
		case <-watchDone:
			fired <- false
		}
	}()
	v, err := readValue(cc.r)
	close(watchDone)
	collapsed := <-fired
	if err != nil {
		c.release(cc, true)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return value{}, ctxErr
		}
		return value{}, fmt.Errorf("kvstore: reading %s reply: %w", name, err)
	}
	if collapsed {
		// The reply landed but the deadline was collapsed concurrently:
		// hand the caller its value, but don't pool the connection.
		c.release(cc, true)
	} else {
		cc.conn.SetReadDeadline(time.Time{})
		c.release(cc, false)
	}

	respSize := len(v.bulk)
	if err := c.delay(ctx, respSize); err != nil {
		return value{}, err
	}
	if v.kind == respError {
		return value{}, serverError(v)
	}
	return v, nil
}

// WaitGet blocks until key holds a value — delivered in the reply itself,
// so a successful wait is one round trip with no follow-up GET — or until
// timeout lapses server-side (ok=false). The wait parks on the client's
// shared multiplexer connection (TWAITGET), so any number of concurrent
// waits hold one connection between them; against a server that predates
// tagged waits the client latches onto the untagged WAITGET, which
// dedicates one pooled connection per wait, and against a server that
// predates waits entirely the error satisfies errors.Is(err,
// ErrUnknownCommand). Context cancellation aborts the wait promptly.
// Servers cap a single wait (currently at 60s); callers wanting longer
// waits re-issue in rounds.
func (c *Client) WaitGet(ctx context.Context, key string, timeout time.Duration) (val []byte, ok bool, err error) {
	ms := timeout.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	msArg := []byte(strconv.FormatInt(ms, 10))
	if !c.muxOff.Load() {
		v, err := c.mux.do(ctx, timeout, "TWAITGET", []byte(key), msArg)
		if err == nil {
			if v.null {
				return nil, false, nil
			}
			return v.bulk, true, nil
		}
		if !errors.Is(err, ErrUnknownCommand) {
			return nil, false, err
		}
		c.muxOff.Store(true)
		c.mMuxFallback.Inc()
	}
	v, err := c.doWait(ctx, timeout, "WAITGET", []byte(key), msArg)
	if err != nil {
		return nil, false, err
	}
	if v.null {
		return nil, false, nil
	}
	return v.bulk, true, nil
}

// WaitPrefix blocks until any key under prefix is mutated with a server
// mutation-sequence number greater than after, or until timeout lapses;
// either way it returns the server's current sequence number, which the
// caller feeds into its next WaitPrefix after rescanning. after=0 is a
// seed by definition and returns the current sequence immediately, as
// does any sequence the server cannot reason about (older than its
// recent-writes ring, or from before a restart) — the primitive is
// conservative, never lossy.
func (c *Client) WaitPrefix(ctx context.Context, prefix string, after uint64, timeout time.Duration) (uint64, error) {
	ms := timeout.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	afterArg := []byte(strconv.FormatUint(after, 10))
	msArg := []byte(strconv.FormatInt(ms, 10))
	if !c.muxOff.Load() {
		v, err := c.mux.do(ctx, timeout, "TWAITPREFIX", []byte(prefix), afterArg, msArg)
		if err == nil {
			return uint64(v.num), nil
		}
		if !errors.Is(err, ErrUnknownCommand) {
			return 0, err
		}
		c.muxOff.Store(true)
		c.mMuxFallback.Inc()
	}
	v, err := c.doWait(ctx, timeout, "WAITPREFIX", []byte(prefix), afterArg, msArg)
	if err != nil {
		return 0, err
	}
	return uint64(v.num), nil
}

// Ping round-trips a PING.
func (c *Client) Ping(ctx context.Context) error {
	v, err := c.do(ctx, "PING")
	if err != nil {
		return err
	}
	if v.kind != respSimpleString || v.str != "PONG" {
		return fmt.Errorf("kvstore: unexpected PING reply %+v", v)
	}
	return nil
}

// Set stores val under key.
func (c *Client) Set(ctx context.Context, key string, val []byte) error {
	_, err := c.do(ctx, "SET", []byte(key), val)
	return err
}

// Get fetches key's value; ok is false when the key does not exist.
func (c *Client) Get(ctx context.Context, key string) (val []byte, ok bool, err error) {
	v, err := c.do(ctx, "GET", []byte(key))
	if err != nil {
		return nil, false, err
	}
	if v.null {
		return nil, false, nil
	}
	return v.bulk, true, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(ctx context.Context, keys ...string) (int64, error) {
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	v, err := c.do(ctx, "DEL", args...)
	if err != nil {
		return 0, err
	}
	return v.num, nil
}

// Exists reports how many of the given keys exist.
func (c *Client) Exists(ctx context.Context, keys ...string) (int64, error) {
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	v, err := c.do(ctx, "EXISTS", args...)
	if err != nil {
		return 0, err
	}
	return v.num, nil
}

// MGet fetches many keys; missing keys yield nil entries.
func (c *Client) MGet(ctx context.Context, keys ...string) ([][]byte, error) {
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	v, err := c.do(ctx, "MGET", args...)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(v.arr))
	for i, el := range v.arr {
		if !el.null {
			out[i] = el.bulk
		}
	}
	return out, nil
}

// MSet stores many key/value pairs atomically.
func (c *Client) MSet(ctx context.Context, pairs map[string][]byte) error {
	args := make([][]byte, 0, len(pairs)*2)
	for k, v := range pairs {
		args = append(args, []byte(k), v)
	}
	_, err := c.do(ctx, "MSET", args...)
	return err
}

// Incr atomically increments the integer at key (missing keys start at 0)
// and returns the new value.
func (c *Client) Incr(ctx context.Context, key string) (int64, error) {
	v, err := c.do(ctx, "INCR", []byte(key))
	if err != nil {
		return 0, err
	}
	return v.num, nil
}

// IncrBy atomically adds delta to the integer at key (missing keys start
// at 0) and returns the new value — one round trip to reserve a range of
// delta log slots.
func (c *Client) IncrBy(ctx context.Context, key string, delta int64) (int64, error) {
	v, err := c.do(ctx, "INCRBY", []byte(key), []byte(strconv.FormatInt(delta, 10)))
	if err != nil {
		return 0, err
	}
	return v.num, nil
}

// CAS atomically swaps key's value from old to new, reporting whether the
// swap happened. A nil/empty old means the key must not exist (SETNX).
func (c *Client) CAS(ctx context.Context, key string, old, new []byte) (bool, error) {
	v, err := c.do(ctx, "CAS", []byte(key), old, new)
	if err != nil {
		return false, err
	}
	return v.num == 1, nil
}

// DelRange deletes the keys prefix+i for start <= i < end (decimal i),
// returning how many existed.
func (c *Client) DelRange(ctx context.Context, prefix string, start, end uint64) (int64, error) {
	v, err := c.do(ctx, "DELRANGE", []byte(prefix),
		[]byte(strconv.FormatUint(start, 10)), []byte(strconv.FormatUint(end, 10)))
	if err != nil {
		return 0, err
	}
	return v.num, nil
}

// DBSize returns the number of keys on the server.
func (c *Client) DBSize(ctx context.Context) (int64, error) {
	v, err := c.do(ctx, "DBSIZE")
	if err != nil {
		return 0, err
	}
	return v.num, nil
}

// FlushAll removes every key on the server.
func (c *Client) FlushAll(ctx context.Context) error {
	_, err := c.do(ctx, "FLUSHALL")
	return err
}

// Promote tells a replica server to stop following its primary and start
// accepting writes (see the package doc's Replication section). On a
// server that is already standalone it is a no-op.
func (c *Client) Promote(ctx context.Context) error {
	_, err := c.do(ctx, "PROMOTE")
	return err
}

// Addr returns the server address the client was built with.
func (c *Client) Addr() string { return c.addr }

// Info returns the server's introspection dump (see the package doc's
// INFO section): "name value" lines covering uptime, key/connection
// counts, and the server's full telemetry snapshot. Against a server
// that predates INFO the error satisfies errors.Is(err,
// ErrUnknownCommand).
func (c *Client) Info(ctx context.Context) (string, error) {
	v, err := c.do(ctx, "INFO")
	if err != nil {
		return "", err
	}
	return string(v.bulk), nil
}
