package kvstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestWaitGetReturnsExistingValueImmediately(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	cli.Set(ctx, "k", []byte("v"))
	start := time.Now()
	val, ok, err := cli.WaitGet(ctx, "k", 5*time.Second)
	if err != nil || !ok || string(val) != "v" {
		t.Fatalf("WaitGet = %q, %v, %v", val, ok, err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("WaitGet on an existing key blocked %v", time.Since(start))
	}
}

func TestWaitGetWakesOnSet(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	type result struct {
		val []byte
		ok  bool
		err error
	}
	got := make(chan result, 1)
	go func() {
		val, ok, err := cli.WaitGet(ctx, "late", 10*time.Second)
		got <- result{val, ok, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the wait park server-side
	start := time.Now()
	if err := cli.Set(ctx, "late", []byte("arrived")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	select {
	case r := <-got:
		if r.err != nil || !r.ok || string(r.val) != "arrived" {
			t.Fatalf("WaitGet = %q, %v, %v", r.val, r.ok, r.err)
		}
		if wake := time.Since(start); wake > time.Second {
			t.Fatalf("wake latency %v", wake)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitGet did not wake on Set")
	}
}

// Every write command that can fill a key must wake a parked WaitGet.
func TestWaitGetWakesOnEveryWriteCommand(t *testing.T) {
	writes := map[string]func(cli *Client, ctx context.Context, key string) error{
		"mset": func(cli *Client, ctx context.Context, key string) error {
			return cli.MSet(ctx, map[string][]byte{key: []byte("x")})
		},
		"cas": func(cli *Client, ctx context.Context, key string) error {
			_, err := cli.CAS(ctx, key, nil, []byte("x"))
			return err
		},
		"incr": func(cli *Client, ctx context.Context, key string) error {
			_, err := cli.Incr(ctx, key)
			return err
		},
	}
	for name, write := range writes {
		t.Run(name, func(t *testing.T) {
			_, cli := newPair(t, nil, nil)
			ctx := context.Background()
			key := "wake-" + name
			got := make(chan bool, 1)
			go func() {
				_, ok, err := cli.WaitGet(ctx, key, 10*time.Second)
				got <- ok && err == nil
			}()
			time.Sleep(50 * time.Millisecond)
			if err := write(cli, ctx, key); err != nil {
				t.Fatalf("write: %v", err)
			}
			select {
			case ok := <-got:
				if !ok {
					t.Fatalf("WaitGet woke without a value")
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("WaitGet did not wake on %s", name)
			}
		})
	}
}

func TestWaitGetTimeoutKeepsConnectionClean(t *testing.T) {
	// A wait that hits its server-side timeout gets a complete (null bulk)
	// reply: the multiplexer connection stays healthy, not burned and
	// redialed. The first wait dials the mux connection; every wait after
	// it must keep the dial count flat.
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.Ping(ctx); err != nil { // establish the one pooled conn
		t.Fatalf("Ping: %v", err)
	}
	var dials uint64
	for i := 0; i < 5; i++ {
		start := time.Now()
		_, ok, err := cli.WaitGet(ctx, "never", 30*time.Millisecond)
		if err != nil {
			t.Fatalf("WaitGet %d: %v", i, err)
		}
		if ok {
			t.Fatalf("WaitGet %d found a value for a missing key", i)
		}
		if time.Since(start) > 2*time.Second {
			t.Fatalf("WaitGet %d blocked %v past its timeout", i, time.Since(start))
		}
		if i == 0 {
			dials = cli.Dials() // pooled conn + the mux conn
		}
	}
	if got := cli.Dials(); got != dials {
		t.Fatalf("dials rose from %d to %d across timed-out waits", dials, got)
	}
	// And the pooled connection still works for ordinary traffic.
	if err := cli.Set(ctx, "after", []byte("ok")); err != nil {
		t.Fatalf("Set after timeouts: %v", err)
	}
	if got := cli.Dials(); got != dials {
		t.Fatalf("post-timeout Set redialed (%d -> %d)", dials, got)
	}
}

func TestWaitGetContextCancellation(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := cli.WaitGet(ctx, "never", 30*time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("WaitGet after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled WaitGet did not return")
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	// Server.Close while WAITGETs are outstanding must hang up the blocked
	// clients with an error — not deadlock Close, not strand the waiters.
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx := context.Background()
	const waiters = 3
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := NewClient(srv.Addr())
			defer cli.Close()
			_, _, err := cli.WaitGet(ctx, fmt.Sprintf("blocked-%d", i), 30*time.Second)
			errs <- err
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // park all waiters server-side
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked behind blocked waiters")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("a blocked WaitGet returned success after server Close")
		}
	}
}

func TestWaitPrefixWakesOnPrefixWrite(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	// Advance the mutation sequence past zero, then seed: after=0 is the
	// defined seed case and returns the current sequence without waiting.
	if err := cli.Set(ctx, "boot", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	start := time.Now()
	seq, err := cli.WaitPrefix(ctx, "log:", 0, 10*time.Second)
	if err != nil {
		t.Fatalf("seed WaitPrefix: %v", err)
	}
	if seq == 0 {
		t.Fatal("seed returned sequence 0 after a mutation")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("seed WaitPrefix blocked %v; after=0 must return immediately", time.Since(start))
	}
	got := make(chan uint64, 1)
	go func() {
		s, err := cli.WaitPrefix(ctx, "log:", seq, 10*time.Second)
		if err == nil {
			got <- s
		}
	}()
	time.Sleep(50 * time.Millisecond)
	// A write outside the prefix must not wake the watch...
	if err := cli.Set(ctx, "other:1", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	select {
	case s := <-got:
		t.Fatalf("WaitPrefix woke (seq %d) on an unrelated write", s)
	case <-time.After(150 * time.Millisecond):
	}
	// ...but one under it must, with a sequence past the watched one.
	if err := cli.Set(ctx, "log:1", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	select {
	case s := <-got:
		if s <= seq {
			t.Fatalf("woke with sequence %d, want > %d", s, seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitPrefix did not wake on a prefix write")
	}
}

func TestWaitPrefixMissedWriteFiresImmediately(t *testing.T) {
	// A matching write landing between the caller's scan and its wait must
	// fire the wait immediately — the recent-writes ring closes the race.
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.Set(ctx, "boot", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	seq, err := cli.WaitPrefix(ctx, "log:", 0, time.Second)
	if err != nil {
		t.Fatalf("seed WaitPrefix: %v", err)
	}
	if err := cli.Set(ctx, "log:racy", []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	start := time.Now()
	s, err := cli.WaitPrefix(ctx, "log:", seq, 10*time.Second)
	if err != nil {
		t.Fatalf("WaitPrefix: %v", err)
	}
	if s <= seq {
		t.Fatalf("sequence did not advance past %d", seq)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("missed write took %v to fire", time.Since(start))
	}
}

func TestWaitPrefixWakesOnRangedDelete(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		cli.Set(ctx, fmt.Sprintf("log:%d", i), []byte("e"))
	}
	seq, err := cli.WaitPrefix(ctx, "log:", 0, time.Second)
	if err != nil {
		t.Fatalf("seed WaitPrefix: %v", err)
	}
	got := make(chan struct{}, 1)
	go func() {
		if _, err := cli.WaitPrefix(ctx, "log:", seq, 10*time.Second); err == nil {
			got <- struct{}{}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := cli.DelRange(ctx, "log:", 0, 3); err != nil {
		t.Fatalf("DelRange: %v", err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitPrefix did not wake on DELRANGE under its prefix")
	}
}

func TestWaitCommandsLeaveAOFUntouched(t *testing.T) {
	// Blocking waits are pure reads: they must append nothing to the AOF,
	// and a log written alongside waits must replay identically.
	aof := filepath.Join(t.TempDir(), "store.aof")
	srv, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	cli := NewClient(srv.Addr())
	ctx := context.Background()
	cli.Set(ctx, "k", []byte("v"))
	stat, err := os.Stat(aof)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	before := stat.Size()
	if _, _, err := cli.WaitGet(ctx, "k", time.Second); err != nil {
		t.Fatalf("WaitGet: %v", err)
	}
	if _, ok, err := cli.WaitGet(ctx, "missing", 20*time.Millisecond); err != nil || ok {
		t.Fatalf("timed-out WaitGet = %v, %v", ok, err)
	}
	if _, err := cli.WaitPrefix(ctx, "k", 0, 20*time.Millisecond); err != nil {
		t.Fatalf("WaitPrefix: %v", err)
	}
	stat, err = os.Stat(aof)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if stat.Size() != before {
		t.Fatalf("AOF grew from %d to %d bytes across wait commands", before, stat.Size())
	}
	cli.Close()
	srv.Close()

	srv2, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("replay NewServer: %v", err)
	}
	defer srv2.Close()
	cli2 := NewClient(srv2.Addr())
	defer cli2.Close()
	if v, ok, err := cli2.Get(ctx, "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("replayed Get = %q, %v, %v", v, ok, err)
	}
}

func TestWaitGetAgainstServerWithoutWaitCommands(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", WithoutWaitCommands())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(srv.Addr())
	t.Cleanup(func() { cli.Close() })
	ctx := context.Background()
	if _, _, err := cli.WaitGet(ctx, "k", time.Second); !errors.Is(err, ErrUnknownCommand) {
		t.Fatalf("WaitGet error = %v, want ErrUnknownCommand", err)
	}
	if _, err := cli.WaitPrefix(ctx, "p", 0, time.Second); !errors.Is(err, ErrUnknownCommand) {
		t.Fatalf("WaitPrefix error = %v, want ErrUnknownCommand", err)
	}
	// Ordinary commands are unaffected.
	if err := cli.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
}

func TestWaitGetManyWaitersAllWake(t *testing.T) {
	srv, _ := newPair(t, nil, nil)
	ctx := context.Background()
	const waiters = 6
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := NewClient(srv.Addr())
			defer cli.Close()
			val, ok, err := cli.WaitGet(ctx, "shared", 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if !ok || string(val) != "fan" {
				errs <- fmt.Errorf("WaitGet = %q, %v", val, ok)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	writer := NewClient(srv.Addr())
	defer writer.Close()
	if err := writer.Set(ctx, "shared", []byte("fan")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
