package kvstore

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// waitMux parks any number of blocking waits on ONE shared connection.
//
// Each wait is sent as a tagged command (TWAITGET/TWAITPREFIX) whose first
// argument is a client-chosen tag; the server answers every tagged wait —
// whenever it resolves, in any order — with a two-element array [tag,
// reply]. A single reader goroutine dispatches replies to the parked
// waiters by tag, so an idle fleet of consumers holds one connection
// instead of one per wait.
//
// The mux connection carries ONLY tagged waits. That makes the reply
// stream unambiguous: every frame is either a [tag, reply] array or an
// untagged error — and an untagged error can only be a server that does
// not know the tagged commands at all, which fails all parked waits with
// ErrUnknownCommand so their callers latch onto the untagged protocol.
//
// An abandoned wait (context cancelled) is simply deregistered; its
// eventual reply arrives with a tag nobody claims and is dropped, leaving
// the shared connection healthy. A transport error fails every parked wait
// and discards the connection; the next wait redials.
type waitMux struct {
	c *Client

	mu      sync.Mutex
	cc      *clientConn
	gen     uint64 // bumped per connection teardown; stale readers no-op
	pending map[uint64]chan muxReply
	nextTag uint64
	// deadline is the read deadline currently armed on cc: the furthest
	// (budget + waitSlack) over all waits issued on it. The server answers
	// every wait by its own timeout, so a lapsed deadline means the server
	// vanished without closing the connection.
	deadline time.Time
	closed   bool
}

type muxReply struct {
	v   value
	err error
}

func newWaitMux(c *Client) *waitMux {
	return &waitMux{c: c, pending: make(map[uint64]chan muxReply)}
}

func (m *waitMux) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.failLocked(errors.New("kvstore: client closed"))
}

// failLocked tears down the current connection and delivers err to every
// parked wait. Callers hold m.mu.
func (m *waitMux) failLocked(err error) {
	if m.cc != nil {
		m.cc.conn.Close()
		m.cc = nil
	}
	m.gen++
	for tag, ch := range m.pending {
		delete(m.pending, tag)
		ch <- muxReply{err: err}
	}
	m.deadline = time.Time{}
}

// fail tears down generation gen; a stale gen (already torn down or
// replaced) is a no-op.
func (m *waitMux) fail(gen uint64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if gen != m.gen {
		return
	}
	m.failLocked(err)
}

// do issues one tagged wait and blocks for its reply. budget is the
// server-side wait timeout, used to extend the shared connection's read
// deadline far enough to cover this wait.
func (m *waitMux) do(ctx context.Context, budget time.Duration, name string, args ...[]byte) (value, error) {
	reqSize := len(name)
	for _, a := range args {
		reqSize += len(a)
	}
	if err := m.c.delay(ctx, reqSize); err != nil {
		return value{}, err
	}

	ch := make(chan muxReply, 1)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return value{}, fmt.Errorf("kvstore: client closed")
	}
	if m.cc == nil {
		cc, err := m.c.dial(ctx)
		if err != nil {
			m.mu.Unlock()
			return value{}, err
		}
		m.cc = cc
		m.gen++
		go m.readLoop(cc, m.gen)
	}
	cc := m.cc
	m.nextTag++
	tag := m.nextTag
	m.pending[tag] = ch
	if dl := time.Now().Add(budget + waitSlack); dl.After(m.deadline) {
		m.deadline = dl
		cc.conn.SetReadDeadline(dl)
	}
	tagArg := strconv.AppendUint(nil, tag, 10)
	err := encodeCommand(cc.w, name, append([][]byte{tagArg}, args...)...)
	if err == nil {
		err = cc.w.Flush()
	}
	if err != nil {
		delete(m.pending, tag)
		m.failLocked(fmt.Errorf("kvstore: sending %s: %w", name, err))
		m.mu.Unlock()
		return value{}, fmt.Errorf("kvstore: sending %s: %w", name, err)
	}
	m.mu.Unlock()
	m.c.trip()

	select {
	case rep := <-ch:
		if rep.err != nil {
			return value{}, rep.err
		}
		respSize := len(rep.v.bulk)
		if err := m.c.delay(ctx, respSize); err != nil {
			return value{}, err
		}
		return rep.v, nil
	case <-ctx.Done():
		// Abandon the wait: deregister so the reader drops the eventual
		// reply; the shared connection stays healthy for other waits.
		m.mu.Lock()
		delete(m.pending, tag)
		m.mu.Unlock()
		return value{}, ctx.Err()
	}
}

// readLoop dispatches tagged replies to parked waits until the connection
// dies. One runs per mux connection generation.
func (m *waitMux) readLoop(cc *clientConn, gen uint64) {
	for {
		v, err := readValue(cc.r)
		if err != nil {
			m.fail(gen, fmt.Errorf("kvstore: reading tagged wait reply: %w", err))
			return
		}
		if v.kind == respError {
			// Untagged error: the server rejected a tagged wait wholesale —
			// a build that predates them. serverError tags unknown-command
			// so the callers latch their fallback.
			m.fail(gen, serverError(v))
			return
		}
		if v.kind != respArray || v.null || len(v.arr) != 2 || v.arr[0].kind != respBulkString {
			m.fail(gen, fmt.Errorf("kvstore: malformed tagged wait reply"))
			return
		}
		tag, perr := strconv.ParseUint(string(v.arr[0].bulk), 10, 64)
		if perr != nil {
			m.fail(gen, fmt.Errorf("kvstore: malformed tagged wait reply tag %q", v.arr[0].bulk))
			return
		}
		m.mu.Lock()
		if gen != m.gen {
			m.mu.Unlock()
			return
		}
		ch := m.pending[tag]
		delete(m.pending, tag)
		m.mu.Unlock()
		if ch == nil {
			continue // abandoned wait; drop the late reply
		}
		rep := v.arr[1]
		if rep.kind == respError {
			ch <- muxReply{err: serverError(rep)}
		} else {
			ch <- muxReply{v: rep}
		}
	}
}
