package kvstore

import (
	"context"
	"fmt"
	"strconv"
	"time"
)

// pipelineWindow bounds how many commands Exec leaves in flight before
// draining their replies. RESP answers pipelined commands strictly in
// order, but a client that writes without reading can deadlock against a
// server blocked writing replies into a full TCP buffer; draining every
// window keeps both sides moving regardless of batch size.
const pipelineWindow = 128

// Pipeline queues commands and sends them in batched round trips: N queued
// commands cost ceil(N/window) flushes instead of N, while the server
// still executes them strictly in order. Build one with Client.Pipeline,
// queue commands (each enqueue returns a *PipeReply resolved by Exec),
// then call Exec once.
//
// Per-command server errors land on the individual PipeReply; Exec itself
// only fails on transport errors, which also fail every unresolved reply.
// Queue only non-blocking commands: a blocking wait (WAITGET) inside a
// pipeline would stall every command queued behind it.
//
// A Pipeline is not safe for concurrent use and is single-shot: discard it
// after Exec.
type Pipeline struct {
	c *Client
	// pick, when set (see NewRoutedPipeline), resolves which client the
	// batch goes to from the queued commands' keys at Exec time.
	pick func(keys [][]byte) (*Client, error)
	// onTransportErr, when set, observes Exec's transport failures (not
	// per-command server errors) so a routing layer can fail over.
	onTransportErr func(error)
	// tap, when set (see TapKV.Pipeline), reports Exec as one "PIPELINE"
	// operation carrying every queued command and reply.
	tap  TapFunc
	cmds []pipeCmd
	reps []*PipeReply
}

type pipeCmd struct {
	name string
	args [][]byte
}

// PipeReply is the eventual reply to one pipelined command; it is resolved
// when Exec returns.
type PipeReply struct {
	v   value
	err error
}

// Err returns the command's server error, the pipeline's transport error,
// or nil.
func (r *PipeReply) Err() error { return r.err }

// Bytes returns a bulk reply; ok is false for a null bulk (missing key).
func (r *PipeReply) Bytes() ([]byte, bool, error) {
	if r.err != nil {
		return nil, false, r.err
	}
	if r.v.null {
		return nil, false, nil
	}
	return r.v.bulk, true, nil
}

// Int returns an integer reply.
func (r *PipeReply) Int() (int64, error) {
	if r.err != nil {
		return 0, r.err
	}
	return r.v.num, nil
}

// Pipeline returns an empty command pipeline.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// NewRoutedPipeline returns a pipeline whose target server is resolved at
// Exec time: pick receives the first-argument key of every queued command
// and returns the client to use (erroring if the keys don't all live on
// one server). onTransportErr, if non-nil, is called with any transport
// error so the router can react (e.g. promote a replica); the error is
// still returned to the caller, whose retry then lands on the new pick.
func NewRoutedPipeline(pick func(keys [][]byte) (*Client, error), onTransportErr func(error)) *Pipeline {
	return &Pipeline{pick: pick, onTransportErr: onTransportErr}
}

// Len reports how many commands are queued.
func (p *Pipeline) Len() int { return len(p.cmds) }

// Do queues an arbitrary command.
func (p *Pipeline) Do(name string, args ...[]byte) *PipeReply {
	r := &PipeReply{}
	p.cmds = append(p.cmds, pipeCmd{name: name, args: args})
	p.reps = append(p.reps, r)
	return r
}

// Get queues a GET.
func (p *Pipeline) Get(key string) *PipeReply { return p.Do("GET", []byte(key)) }

// Set queues a SET.
func (p *Pipeline) Set(key string, val []byte) *PipeReply {
	return p.Do("SET", []byte(key), val)
}

// Del queues a DEL of one key.
func (p *Pipeline) Del(key string) *PipeReply { return p.Do("DEL", []byte(key)) }

// Incr queues an INCR.
func (p *Pipeline) Incr(key string) *PipeReply { return p.Do("INCR", []byte(key)) }

// IncrBy queues an INCRBY.
func (p *Pipeline) IncrBy(key string, delta int64) *PipeReply {
	return p.Do("INCRBY", []byte(key), []byte(strconv.FormatInt(delta, 10)))
}

// CAS queues a CAS (see Client.CAS for semantics).
func (p *Pipeline) CAS(key string, old, new []byte) *PipeReply {
	return p.Do("CAS", []byte(key), old, new)
}

// transportErr reports a transport failure to the routing layer, if any.
// Context cancellation is the caller abandoning the batch, not a sick
// server — it never triggers failover.
func (p *Pipeline) transportErr(ctx context.Context, err error) {
	if p.onTransportErr != nil && ctx.Err() == nil {
		p.onTransportErr(err)
	}
}

// failFrom marks every not-yet-resolved reply (index i on) as failed with
// err, so a transport error mid-pipeline leaves no reply silently
// unresolved.
func (p *Pipeline) failFrom(i int, err error) {
	for ; i < len(p.reps); i++ {
		p.reps[i].err = err
	}
}

// Exec flushes the queued commands in windows over one pooled connection
// and resolves every PipeReply. It returns the first transport error, if
// any; per-command server errors are reported only on their replies.
func (p *Pipeline) Exec(ctx context.Context) error {
	if len(p.cmds) == 0 {
		return nil
	}
	if p.tap != nil {
		done := p.tap("PIPELINE", pipeArgs(p.cmds), false)
		err := p.exec(ctx)
		done(pipeReplies(p.reps), err)
		return err
	}
	return p.exec(ctx)
}

func (p *Pipeline) exec(ctx context.Context) error {
	if p.pick != nil {
		keys := make([][]byte, 0, len(p.cmds))
		for _, cmd := range p.cmds {
			if len(cmd.args) > 0 {
				keys = append(keys, cmd.args[0])
			}
		}
		c, err := p.pick(keys)
		if err != nil {
			p.failFrom(0, err)
			return err
		}
		p.c = c
	}
	reqSize := 0
	for _, cmd := range p.cmds {
		reqSize += len(cmd.name)
		for _, a := range cmd.args {
			reqSize += len(a)
		}
	}
	if err := p.c.delay(ctx, reqSize); err != nil {
		p.failFrom(0, err)
		return err
	}
	cc, err := p.c.acquire(ctx)
	if err != nil {
		p.transportErr(ctx, err)
		p.failFrom(0, err)
		return err
	}
	p.c.mPipeDepth.Observe(int64(len(p.cmds)))
	respSize := 0
	for base := 0; base < len(p.cmds); base += pipelineWindow {
		end := base + pipelineWindow
		if end > len(p.cmds) {
			end = len(p.cmds)
		}
		for i := base; i < end; i++ {
			if err := encodeCommand(cc.w, p.cmds[i].name, p.cmds[i].args...); err != nil {
				p.c.release(cc, true)
				err = fmt.Errorf("kvstore: sending pipelined %s: %w", p.cmds[i].name, err)
				p.transportErr(ctx, err)
				p.failFrom(base, err)
				return err
			}
		}
		sent := time.Now()
		if err := cc.w.Flush(); err != nil {
			p.c.release(cc, true)
			err = fmt.Errorf("kvstore: sending pipeline: %w", err)
			p.transportErr(ctx, err)
			p.failFrom(base, err)
			return err
		}
		p.c.trip()
		for i := base; i < end; i++ {
			v, err := readValue(cc.r)
			if err != nil {
				p.c.release(cc, true)
				err = fmt.Errorf("kvstore: reading pipelined %s reply: %w", p.cmds[i].name, err)
				p.transportErr(ctx, err)
				p.failFrom(i, err)
				return err
			}
			if v.kind == respError {
				p.reps[i].err = serverError(v)
			} else {
				p.reps[i].v = v
			}
			respSize += len(v.bulk)
			for _, el := range v.arr {
				respSize += len(el.bulk)
			}
		}
		p.c.mRTT.Since(sent)
	}
	p.c.release(cc, false)
	return p.c.delay(ctx, respSize)
}
