package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// aofStateAfter replays the complete records at the start of raw into a
// fresh map — the straight-line definition of "state after N log bytes"
// that loadAOF must agree with.
func aofStateAfter(t *testing.T, raw []byte) map[string][]byte {
	t.Helper()
	dummy := &Server{data: make(map[string][]byte)}
	recs, _, err := splitAOFRecords(raw)
	if err != nil {
		t.Fatalf("splitAOFRecords: %v", err)
	}
	for _, rec := range recs {
		if err := dummy.applyRecordLocked(rec); err != nil {
			t.Fatalf("applyRecordLocked: %v", err)
		}
	}
	return dummy.data
}

func snapshotData(s *Server) map[string][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

func sameState(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !bytes.Equal(v, w) {
			return false
		}
	}
	return true
}

// TestAOFConcurrentSetDelRestart is the regression test for the append-
// order bug: del used to append its AOF record after releasing s.mu, so
// a concurrent SET could persist in the opposite order it applied and a
// restart would resurrect (or lose) the key. Hammer one key from two
// writers, then assert the restarted state matches the final live state.
func TestAOFConcurrentSetDelRestart(t *testing.T) {
	aof := filepath.Join(t.TempDir(), "kv.aof")
	srv, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	setter := NewClient(srv.Addr())
	deleter := NewClient(srv.Addr())
	ctx := context.Background()

	const ops = 300
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			if err := setter.Set(ctx, "contested", []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("Set: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			if _, err := deleter.Del(ctx, "contested"); err != nil {
				t.Errorf("Del: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	setter.Close()
	deleter.Close()

	live := snapshotData(srv)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	srv2, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.Close()
	restored := snapshotData(srv2)
	if !sameState(live, restored) {
		t.Fatalf("restart diverged: live=%q restored=%q", live, restored)
	}
}

// writeAOFRun produces a small but representative log: sets, overwrites,
// deletes, an INCR, a DELRANGE sweep, a FLUSHALL, and writes after it.
func writeAOFRun(t *testing.T, aof string) []byte {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	cli := NewClient(srv.Addr())
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := cli.Set(ctx, fmt.Sprintf("ps:t:e:%d", i), []byte(fmt.Sprintf("event-%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := cli.Set(ctx, "ps:t:head", []byte("0")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, err := cli.Incr(ctx, "ps:t:head"); err != nil {
		t.Fatalf("Incr: %v", err)
	}
	if _, err := cli.Del(ctx, "ps:t:e:0"); err != nil {
		t.Fatalf("Del: %v", err)
	}
	if _, err := cli.DelRange(ctx, "ps:t:e:", 1, 4); err != nil {
		t.Fatalf("DelRange: %v", err)
	}
	if err := cli.FlushAll(ctx); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := cli.Set(ctx, "after", []byte("flush")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	cli.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw, err := os.ReadFile(aof)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return raw
}

// TestAOFTorture truncates the log at every byte boundary and asserts
// the loader recovers exactly the complete-record prefix state — never a
// divergent one — and cuts the file back to the record boundary so the
// tear can never end up mid-log once appends resume.
func TestAOFTorture(t *testing.T) {
	dir := t.TempDir()
	raw := writeAOFRun(t, filepath.Join(dir, "run.aof"))
	if len(raw) == 0 {
		t.Fatal("empty AOF run")
	}
	// Record boundaries, for asserting post-load truncation.
	recs, span, err := splitAOFRecords(raw)
	if err != nil || span != len(raw) {
		t.Fatalf("run log not record-aligned: span=%d len=%d err=%v", span, len(raw), err)
	}
	boundary := map[int]bool{0: true}
	at := 0
	for _, rec := range recs {
		at += rec.encodedLen()
		boundary[at] = true
	}

	for cut := 0; cut <= len(raw); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.aof", cut))
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		srv, err := NewServer("127.0.0.1:0", WithPersistence(path))
		if err != nil {
			t.Fatalf("cut %d: load errored on a pure prefix (crash tails must recover): %v", cut, err)
		}
		want := aofStateAfter(t, raw[:cut])
		got := snapshotData(srv)
		if !sameState(want, got) {
			srv.Close()
			t.Fatalf("cut %d: divergent state: want %q got %q", cut, want, got)
		}
		srv.Close()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("Stat: %v", err)
		}
		if !boundary[int(fi.Size())] {
			t.Fatalf("cut %d: file left at %d bytes, not a record boundary", cut, fi.Size())
		}
	}
}

// TestAOFTornMiddleRefused: a tear that is NOT the file's final bytes is
// corruption, not a crash tail — load must error loudly instead of
// silently dropping every record after it.
func TestAOFTornMiddleRefused(t *testing.T) {
	dir := t.TempDir()
	raw := writeAOFRun(t, filepath.Join(dir, "run.aof"))
	recs, _, err := splitAOFRecords(raw)
	if err != nil || len(recs) < 3 {
		t.Fatalf("need ≥3 records, got %d (err=%v)", len(recs), err)
	}
	first := recs[0].encodedLen()
	second := recs[1].encodedLen()
	// First record intact, second torn mid-body, then the rest of the log.
	torn := append([]byte(nil), raw[:first+second-2]...)
	torn = append(torn, raw[first+second:]...)
	path := filepath.Join(dir, "torn-middle.aof")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	srv, err := NewServer("127.0.0.1:0", WithPersistence(path))
	if err == nil {
		srv.Close()
		t.Fatal("load accepted a torn mid-file record")
	}
	if !strings.Contains(err.Error(), "torn record") && !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unhelpful error for torn middle: %v", err)
	}
}

// TestAOFCorruptHeaderRefused: an absurd header (bad op) errors rather
// than truncating.
func TestAOFCorruptHeaderRefused(t *testing.T) {
	dir := t.TempDir()
	raw := writeAOFRun(t, filepath.Join(dir, "run.aof"))
	bad := append([]byte(nil), raw...)
	bad[0] = 200
	path := filepath.Join(dir, "bad-op.aof")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	srv, err := NewServer("127.0.0.1:0", WithPersistence(path))
	if err == nil {
		srv.Close()
		t.Fatal("load accepted a corrupt record header")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unhelpful error for corrupt header: %v", err)
	}
}

// TestAOFBrokenLatch: once an append fails, the server stops appending
// (no garbage after a torn middle), surfaces the condition via InfoText
// and AOFBroken, and Close returns the error.
func TestAOFBrokenLatch(t *testing.T) {
	aof := filepath.Join(t.TempDir(), "kv.aof")
	srv, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	cli := NewClient(srv.Addr())
	defer cli.Close()
	ctx := context.Background()
	if err := cli.Set(ctx, "ok", []byte("1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	// Break the file behind the server's back: further writes fail.
	srv.aofMu.Lock()
	srv.aof.Close()
	srv.aofMu.Unlock()
	if err := cli.Set(ctx, "broken", []byte("2")); err != nil {
		t.Fatalf("Set after break (command itself must still succeed): %v", err)
	}
	if !srv.AOFBroken() {
		t.Fatal("AOFBroken = false after failed append")
	}
	if info := srv.InfoText(); !strings.Contains(info, "server.aof_broken 1") {
		t.Fatalf("InfoText missing aof_broken flag:\n%s", info)
	}
	// The latch holds: no further append attempts mutate the size.
	srv.aofMu.Lock()
	size := srv.aofSize
	srv.aofMu.Unlock()
	if err := cli.Set(ctx, "broken2", []byte("3")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	srv.aofMu.Lock()
	size2 := srv.aofSize
	srv.aofMu.Unlock()
	if size2 != size {
		t.Fatalf("aofSize advanced after latch: %d -> %d", size, size2)
	}
	err = srv.Close()
	if err == nil || !strings.Contains(err.Error(), "append-only file broken") {
		t.Fatalf("Close did not surface the broken AOF: %v", err)
	}
	// The file holds only the records appended before the break.
	raw, rerr := os.ReadFile(aof)
	if rerr != nil {
		t.Fatalf("ReadFile: %v", rerr)
	}
	state := aofStateAfter(t, raw)
	if string(state["ok"]) != "1" || state["broken"] != nil {
		t.Fatalf("unexpected file state after latch: %q", state)
	}
}

// TestDelRangeSingleAOFRecord: a DELRANGE sweep persists as ONE range
// record, not one record per key.
func TestDelRangeSingleAOFRecord(t *testing.T) {
	aof := filepath.Join(t.TempDir(), "kv.aof")
	srv, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	cli := NewClient(srv.Addr())
	defer cli.Close()
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		if err := cli.Set(ctx, fmt.Sprintf("ps:t:e:%d", i), []byte("x")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	n, err := cli.DelRange(ctx, "ps:t:e:", 0, 32)
	if err != nil || n != 32 {
		t.Fatalf("DelRange = %d, %v", n, err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw, err := os.ReadFile(aof)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	recs, span, err := splitAOFRecords(raw)
	if err != nil || span != len(raw) {
		t.Fatalf("log not record-aligned: %v", err)
	}
	var ranges, dels int
	for _, rec := range recs {
		switch rec.op {
		case aofDelRange:
			ranges++
		case aofDel:
			dels++
		}
	}
	if ranges != 1 || dels != 0 {
		t.Fatalf("DELRANGE persisted as %d range records and %d del records; want 1 and 0", ranges, dels)
	}
	// And the record replays to an empty keyspace.
	if state := aofStateAfter(t, raw); len(state) != 0 {
		t.Fatalf("replayed state not empty: %q", state)
	}
}
