package kvstore

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

// normalizeValue collapses representations that are semantically identical
// on the wire (nil vs empty bulk payloads and arrays) so round-trip
// comparison is byte-exact without being allocation-exact.
func normalizeValue(v value) value {
	if len(v.bulk) == 0 {
		v.bulk = nil
	}
	if len(v.arr) == 0 {
		v.arr = nil
	} else {
		arr := make([]value, len(v.arr))
		for i, el := range v.arr {
			arr[i] = normalizeValue(el)
		}
		v.arr = arr
	}
	if v.null {
		v.bulk = nil
		v.arr = nil
	}
	return v
}

// FuzzRESPRoundTrip feeds arbitrary bytes to the RESP reader. Whatever it
// accepts must re-encode and re-parse to the identical value — the
// reader/writer pair is a lossless round trip over every frame the
// protocol can carry, tagged reply arrays included.
func FuzzRESPRoundTrip(f *testing.F) {
	seed := func(v value) {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeValue(w, v); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		w.Flush()
		f.Add(buf.Bytes())
	}
	// Untagged frames: every reply kind the server produces.
	seed(simpleString("OK"))
	seed(errorValue("ERR unknown command 'TWAITGET'"))
	seed(integerValue(-42))
	seed(bulkValue([]byte("payload\r\nwith framing bytes")))
	seed(nullBulk())
	seed(value{kind: respArray, null: true})
	seed(arrayValue([]value{bulkValue([]byte("a")), nullBulk(), integerValue(7)}))
	// Tagged wait frames: [tag, reply] with each reply shape.
	seed(taggedReply([]byte("17"), bulkValue([]byte("value"))))
	seed(taggedReply([]byte("18"), nullBulk()))
	seed(taggedReply([]byte("19"), integerValue(9)))
	seed(taggedReply([]byte("20"), errorValue("ERR server closed")))
	// Command frames (arrays of bulk strings), tagged and untagged.
	cmd := func(parts ...string) {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		args := make([][]byte, len(parts)-1)
		for i, p := range parts[1:] {
			args[i] = []byte(p)
		}
		if err := encodeCommand(w, parts[0], args...); err != nil {
			f.Fatalf("seed command: %v", err)
		}
		w.Flush()
		f.Add(buf.Bytes())
	}
	cmd("GET", "key")
	cmd("SET", "key", "val")
	cmd("WAITGET", "key", "1000")
	cmd("TWAITGET", "3", "key", "1000")
	cmd("TWAITPREFIX", "4", "ps:t:", "12", "15000")

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := readValue(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // rejected input; only accepted frames must round-trip
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeValue(w, v); err != nil {
			t.Fatalf("re-encoding accepted value %+v: %v", v, err)
		}
		w.Flush()
		v2, err := readValue(bufio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("re-parsing re-encoded frame %q: %v", buf.Bytes(), err)
		}
		if !reflect.DeepEqual(normalizeValue(v), normalizeValue(v2)) {
			t.Fatalf("round trip changed value:\n before %+v\n after  %+v", v, v2)
		}
		// Frames that parse as commands must survive the command layer too.
		if c, err := parseCommand(v); err == nil {
			var cbuf bytes.Buffer
			cw := bufio.NewWriter(&cbuf)
			if err := encodeCommand(cw, c.name, c.args...); err != nil {
				t.Fatalf("re-encoding command %q: %v", c.name, err)
			}
			cw.Flush()
			v3, err := readValue(bufio.NewReader(bytes.NewReader(cbuf.Bytes())))
			if err != nil {
				t.Fatalf("re-parsing re-encoded command: %v", err)
			}
			c2, err := parseCommand(v3)
			if err != nil {
				t.Fatalf("re-parsing command: %v", err)
			}
			if c2.name != c.name || len(c2.args) != len(c.args) {
				t.Fatalf("command round trip changed shape: %+v vs %+v", c, c2)
			}
			for i := range c.args {
				if !bytes.Equal(c.args[i], c2.args[i]) {
					t.Fatalf("command arg %d changed: %q vs %q", i, c.args[i], c2.args[i])
				}
			}
		}
	})
}
