package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// tapLog collects tapped operations for assertions.
type tapLog struct {
	mu  sync.Mutex
	ops []tapOp
}

type tapOp struct {
	name     string
	args     [][]byte
	reply    [][]byte
	err      error
	blocking bool
}

func (l *tapLog) fn(name string, args [][]byte, blocking bool) TapDone {
	return func(reply [][]byte, err error) {
		l.mu.Lock()
		l.ops = append(l.ops, tapOp{name: name, args: args, reply: reply, err: err, blocking: blocking})
		l.mu.Unlock()
	}
}

func (l *tapLog) snapshot() []tapOp {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]tapOp(nil), l.ops...)
}

func (l *tapLog) find(t *testing.T, name string) tapOp {
	t.Helper()
	for _, op := range l.snapshot() {
		if op.name == name {
			return op
		}
	}
	t.Fatalf("no %s operation tapped; got %+v", name, l.snapshot())
	return tapOp{}
}

// TestTapRecordsOperations drives one of every command through a TapKV
// and checks the recorded name, args, normalized reply, and blocking
// flag — the exact material the wiretap recorder persists.
func TestTapRecordsOperations(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	log := &tapLog{}
	kv := NewTap(cli, log.fn)
	ctx := context.Background()

	if err := kv.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := kv.Get(ctx, "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, err := kv.Get(ctx, "missing"); err != nil || ok {
		t.Fatalf("Get missing = %v, %v", ok, err)
	}
	if n, err := kv.Incr(ctx, "ctr"); err != nil || n != 1 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	if won, err := kv.CAS(ctx, "cas", nil, []byte("x")); err != nil || !won {
		t.Fatalf("CAS = %v, %v", won, err)
	}
	if _, ok, err := kv.WaitGet(ctx, "never", 20*time.Millisecond); err != nil || ok {
		t.Fatalf("WaitGet = %v, %v", ok, err)
	}

	ops := log.snapshot()
	if len(ops) != 6 {
		t.Fatalf("tapped %d ops, want 6: %+v", len(ops), ops)
	}
	set := log.find(t, "SET")
	if len(set.args) != 2 || string(set.args[0]) != "k" || string(set.args[1]) != "v" || set.err != nil {
		t.Fatalf("SET tapped as %+v", set)
	}
	hit := ops[1]
	if hit.name != "GET" || len(hit.reply) != 2 || string(hit.reply[0]) != "b" || string(hit.reply[1]) != "v" {
		t.Fatalf("GET hit reply = %q", hit.reply)
	}
	miss := ops[2]
	if miss.name != "GET" || len(miss.reply) != 1 || string(miss.reply[0]) != "n" {
		t.Fatalf("GET miss reply = %q", miss.reply)
	}
	if incr := log.find(t, "INCR"); string(incr.reply[0]) != "i1" {
		t.Fatalf("INCR reply = %q", incr.reply)
	}
	cas := log.find(t, "CAS")
	if string(cas.reply[0]) != "i1" || len(cas.args) != 3 || len(cas.args[1]) != 0 {
		t.Fatalf("CAS tapped as %+v", cas)
	}
	wg := log.find(t, "WAITGET")
	if !wg.blocking {
		t.Fatal("WAITGET not marked blocking")
	}
	if want := fmt.Sprint(int64(20 * time.Millisecond)); string(wg.args[1]) != want {
		t.Fatalf("WAITGET timeout arg = %q, want %q (nanoseconds)", wg.args[1], want)
	}
	if string(wg.reply[0]) != "n" {
		t.Fatalf("timed-out WAITGET reply = %q, want null", wg.reply)
	}
}

// TestTapRecordsPipeline: a batched round trip is tapped as one PIPELINE
// operation carrying every queued command and every per-command reply —
// including per-command errors, which surface as "e..." reply elements
// without failing the batch.
func TestTapRecordsPipeline(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	log := &tapLog{}
	kv := NewTap(cli, log.fn)
	ctx := context.Background()

	p := kv.Pipeline()
	p.Set("pk", []byte("pv"))
	p.Get("pk")
	p.Do("BOGUS", []byte("arg"))
	if err := p.Exec(ctx); err != nil {
		t.Fatalf("Exec: %v", err)
	}

	ops := log.snapshot()
	if len(ops) != 1 || ops[0].name != "PIPELINE" {
		t.Fatalf("tapped %+v, want one PIPELINE op", ops)
	}
	op := ops[0]
	if string(op.args[0]) != "3" {
		t.Fatalf("PIPELINE arg[0] = %q, want queued-command count 3", op.args[0])
	}
	wantArgs := []string{"3", "SET", "2", "pk", "pv", "GET", "1", "pk", "BOGUS", "1", "arg"}
	if len(op.args) != len(wantArgs) {
		t.Fatalf("PIPELINE args = %q, want %q", op.args, wantArgs)
	}
	for i, w := range wantArgs {
		if string(op.args[i]) != w {
			t.Fatalf("PIPELINE args[%d] = %q, want %q", i, op.args[i], w)
		}
	}
	// Replies: SET → sOK, GET → b,pv, BOGUS → e...
	if string(op.reply[0]) != "sOK" {
		t.Fatalf("SET reply element = %q", op.reply[0])
	}
	if string(op.reply[1]) != "b" || string(op.reply[2]) != "pv" {
		t.Fatalf("GET reply elements = %q %q", op.reply[1], op.reply[2])
	}
	if op.reply[3][0] != 'e' {
		t.Fatalf("BOGUS reply element = %q, want an error element", op.reply[3])
	}
}

// TestTapComposesAndUnwraps: taps stack like pstream's broker wrappers —
// the outer tap sees every op the inner one does, and AsClient walks the
// whole stack down to the concrete client.
func TestTapComposesAndUnwraps(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	inner, outer := &tapLog{}, &tapLog{}
	kv := NewTap(NewTap(cli, inner.fn), outer.fn)

	if got, ok := AsClient(kv); !ok || got != cli {
		t.Fatalf("AsClient through a tap stack = %v, %v; want the concrete client", got, ok)
	}
	if _, ok := AsClient(nil); ok {
		t.Fatal("AsClient(nil) claimed success")
	}

	if err := kv.Set(context.Background(), "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	for name, log := range map[string]*tapLog{"inner": inner, "outer": outer} {
		ops := log.snapshot()
		if len(ops) != 1 || ops[0].name != "SET" {
			t.Fatalf("%s tap saw %+v, want the SET", name, ops)
		}
	}
}

// countingDialer wraps the real dialer, counting and collecting every
// connection the client establishes.
type countingDialer struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (d *countingDialer) dial(ctx context.Context, network, addr string) (net.Conn, error) {
	var nd net.Dialer
	conn, err := nd.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.conns = append(d.conns, conn)
	d.mu.Unlock()
	return conn, nil
}

func (d *countingDialer) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

// TestDialFuncCarriesEveryConnection: with WithDialFunc installed, both
// the pooled request connections and the wait multiplexer's shared
// connection are established through the hook — the client never dials
// around it.
func TestDialFuncCarriesEveryConnection(t *testing.T) {
	dialer := &countingDialer{}
	_, cli := newPair(t, nil, []ClientOption{WithDialFunc(dialer.dial)})
	ctx := context.Background()

	if err := cli.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cli.WaitGet(ctx, "parked", 20*time.Millisecond); err != nil || ok {
		t.Fatalf("WaitGet = %v, %v", ok, err)
	}
	if got, want := uint64(dialer.count()), cli.Dials(); got != want || got < 2 {
		t.Fatalf("hook saw %d dials, client made %d (want equal, ≥2: pool + mux)", got, want)
	}
}

// TestDialFuncHonorsDialTimeout: the configured dial timeout arrives at
// the hook as a context deadline, and a hook that respects it bounds a
// stuck connection attempt.
func TestDialFuncHonorsDialTimeout(t *testing.T) {
	cli := NewClient("203.0.113.1:1", // TEST-NET; the hook never actually dials
		WithDialTimeout(50*time.Millisecond),
		WithDialFunc(func(ctx context.Context, network, addr string) (net.Conn, error) {
			dl, ok := ctx.Deadline()
			if !ok {
				t.Error("dial hook received no deadline")
			} else if until := time.Until(dl); until > time.Second {
				t.Errorf("dial deadline %v away, want ≈50ms", until)
			}
			<-ctx.Done() // a black-holed dial: only the deadline ends it
			return nil, ctx.Err()
		}))
	defer cli.Close()

	start := time.Now()
	err := cli.Set(context.Background(), "k", []byte("v"))
	if err == nil {
		t.Fatal("Set succeeded through a black-holed dial")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stuck dial took %v to fail, dial timeout is 50ms", elapsed)
	}
}

// TestMuxReconnectRedialsThroughDialFunc: when the multiplexer's shared
// connection dies, the replacement connection is dialed through the hook
// too — reconnects cannot bypass the interposition point.
func TestMuxReconnectRedialsThroughDialFunc(t *testing.T) {
	dialer := &countingDialer{}
	_, cli := newPair(t, nil, []ClientOption{WithDialFunc(dialer.dial)})
	ctx := context.Background()

	// Park one wait to establish the mux connection through the hook.
	if _, ok, err := cli.WaitGet(ctx, "first", 20*time.Millisecond); err != nil || ok {
		t.Fatalf("WaitGet = %v, %v", ok, err)
	}
	before := dialer.count()
	if before == 0 {
		t.Fatal("mux connection was not dialed through the hook")
	}

	// Kill every established connection out from under the client.
	dialer.mu.Lock()
	for _, conn := range dialer.conns {
		conn.Close()
	}
	dialer.mu.Unlock()

	// The next waits must re-dial (through the hook) and then succeed.
	if err := cli.Set(ctx, "wake", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok, err := cli.WaitGet(ctx, "wake", 100*time.Millisecond)
		if err == nil && ok && bytes.Equal(v, []byte("v")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mux never recovered: %q, %v, %v", v, ok, err)
		}
	}
	if after := dialer.count(); after <= before {
		t.Fatalf("reconnect bypassed the dial hook: %d dials before kill, %d after recovery", before, after)
	}
}
