package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// --- Append-only persistence (and the replication log) --------------------
//
// The AOF is a flat sequence of records, each
//
//	op(1) keyLen(4 LE) valLen(4 LE) key val
//
// with ops aofSet (key gains val), aofDel (key removed), aofDelRange
// (key holds the prefix, val holds two LE uint64s [start,end) — one record
// for a whole DELRANGE sweep), and aofFlush (keyspace cleared; empty key
// and val). Records are appended in APPLY order — every mutation appends
// while still holding the data mutex — so replaying a prefix of the file
// always reconstructs a state the server actually passed through. That
// property is what lets the same byte stream double as the replication
// feed: a replica at byte offset N has exactly the primary's state after
// the first N bytes of mutations.

const (
	aofSet      byte = 1
	aofDel      byte = 2
	aofDelRange byte = 3
	aofFlush    byte = 4
)

const aofHeaderLen = 9

// errTornRecord marks a record cut short by the end of input — tolerable
// only when the tear is the file's final bytes (a crash mid-append).
var errTornRecord = errors.New("kvstore: torn persistence record")

// aofRecord is one decoded AOF record. key and val may alias the buffer
// they were parsed from; neither is ever mutated after apply.
type aofRecord struct {
	op  byte
	key []byte
	val []byte
}

// encodedLen returns the record's on-disk size.
func (rec aofRecord) encodedLen() int { return aofHeaderLen + len(rec.key) + len(rec.val) }

// checkAOFHeader validates a record header's lengths, distinguishing
// corruption (absurd lengths) from a merely torn record.
func checkAOFHeader(op byte, keyLen, valLen uint32) error {
	if op < aofSet || op > aofFlush {
		return fmt.Errorf("kvstore: corrupt persistence record op=%d", op)
	}
	if keyLen > maxBulkLen || valLen > maxBulkLen {
		return fmt.Errorf("kvstore: corrupt persistence record: lengths %d/%d exceed limit", keyLen, valLen)
	}
	return nil
}

// readAOFRecord reads one record from r. io.EOF at a record boundary is
// returned as-is; a record cut short mid-way yields errTornRecord.
func readAOFRecord(r *bufio.Reader) (aofRecord, error) {
	var hdr [aofHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return aofRecord{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return aofRecord{}, errTornRecord
		}
		return aofRecord{}, fmt.Errorf("kvstore: reading persistence file: %w", err)
	}
	keyLen := binary.LittleEndian.Uint32(hdr[1:5])
	valLen := binary.LittleEndian.Uint32(hdr[5:9])
	if err := checkAOFHeader(hdr[0], keyLen, valLen); err != nil {
		return aofRecord{}, err
	}
	body := make([]byte, int(keyLen)+int(valLen))
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return aofRecord{}, errTornRecord
		}
		return aofRecord{}, fmt.Errorf("kvstore: reading persistence file: %w", err)
	}
	return aofRecord{op: hdr[0], key: body[:keyLen], val: body[keyLen:]}, nil
}

// splitAOFRecords parses the complete records at the start of raw,
// returning them and the byte count they span; a trailing partial record
// is left unconsumed. Corrupt headers error. Returned records alias raw.
func splitAOFRecords(raw []byte) ([]aofRecord, int, error) {
	var recs []aofRecord
	off := 0
	for off+aofHeaderLen <= len(raw) {
		op := raw[off]
		keyLen := binary.LittleEndian.Uint32(raw[off+1 : off+5])
		valLen := binary.LittleEndian.Uint32(raw[off+5 : off+9])
		if err := checkAOFHeader(op, keyLen, valLen); err != nil {
			return recs, off, err
		}
		end := off + aofHeaderLen + int(keyLen) + int(valLen)
		if end > len(raw) {
			break
		}
		body := raw[off+aofHeaderLen : end]
		recs = append(recs, aofRecord{op: op, key: body[:keyLen], val: body[keyLen:]})
		off = end
	}
	return recs, off, nil
}

// encodeAOFRecord assembles one record as a single buffer, so the append
// is one write syscall: either the whole record lands or the write errors
// and the server latches the file broken — a torn middle is never written
// by a live server (only a crash can tear the final record).
func encodeAOFRecord(op byte, key string, val []byte) []byte {
	buf := make([]byte, aofHeaderLen+len(key)+len(val))
	buf[0] = op
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(val)))
	copy(buf[aofHeaderLen:], key)
	copy(buf[aofHeaderLen+len(key):], val)
	return buf
}

// delRangeVal encodes a DELRANGE's [start,end) bounds as an aofDelRange
// record value.
func delRangeVal(start, end uint64) []byte {
	var v [16]byte
	binary.LittleEndian.PutUint64(v[:8], start)
	binary.LittleEndian.PutUint64(v[8:], end)
	return v[:]
}

// applyRecordLocked applies one record to the data map. Callers hold s.mu
// (or own the server exclusively, as during load).
func (s *Server) applyRecordLocked(rec aofRecord) error {
	switch rec.op {
	case aofSet:
		// Records parsed from a shared buffer are never mutated afterwards,
		// so adopting the alias is safe; copy anyway when the buffer is the
		// load path's per-record allocation — it already is a fresh slice.
		s.data[string(rec.key)] = rec.val
	case aofDel:
		delete(s.data, string(rec.key))
	case aofDelRange:
		if len(rec.val) != 16 {
			return fmt.Errorf("kvstore: corrupt persistence range record: %d-byte bounds", len(rec.val))
		}
		start := binary.LittleEndian.Uint64(rec.val[:8])
		end := binary.LittleEndian.Uint64(rec.val[8:])
		if end < start || end-start > delRangeMax {
			return fmt.Errorf("kvstore: corrupt persistence range record: bounds [%d,%d)", start, end)
		}
		prefix := string(rec.key)
		for i := start; i < end; i++ {
			delete(s.data, prefix+strconv.FormatUint(i, 10))
		}
	case aofFlush:
		s.data = make(map[string][]byte)
	default:
		return fmt.Errorf("kvstore: corrupt persistence record op=%d", rec.op)
	}
	return nil
}

// notifyRecord wakes waiters affected by one applied record. Called by the
// replica apply path after releasing the data mutex.
func (s *Server) notifyRecord(rec aofRecord) {
	switch rec.op {
	case aofSet, aofDel:
		s.notify.published(string(rec.key))
	case aofDelRange:
		s.notify.publishedRange(string(rec.key))
	case aofFlush:
		s.notify.publishedAll()
	}
}

// appendAOF persists one already-applied mutation. Callers hold s.mu, so
// the file's record order always matches apply order — the invariant
// replication and restart replay both depend on. A write error latches
// the file broken: nothing further is appended (a partial record followed
// by more records would corrupt every later replay), the condition
// surfaces through InfoText (server.aof_broken) and the Close error, and
// replication stalls at the last good offset.
func (s *Server) appendAOF(op byte, key string, val []byte) {
	if s.aof == nil {
		return
	}
	buf := encodeAOFRecord(op, key, val)
	s.aofMu.Lock()
	defer s.aofMu.Unlock()
	if s.aofErr != nil {
		return
	}
	n, err := s.aof.Write(buf)
	if err == nil && n < len(buf) {
		err = io.ErrShortWrite
	}
	if err == nil && s.aofSync {
		err = s.aof.Sync()
	}
	if err != nil {
		s.aofErr = err
		s.logger.Printf("kvstore: aof broken, appends stopped: %v", err)
		// Wake replication feeds so they notice the log will not advance.
		s.aofCond.Broadcast()
		return
	}
	if s.commitLatency > 0 {
		time.Sleep(s.commitLatency)
	}
	s.aofSize += int64(len(buf))
	s.aofCond.Broadcast()
}

// appendReplicated appends raw already-validated records received
// from the primary to the replica's own AOF, keeping the replica's file a
// byte-identical prefix of the primary's — which is exactly what makes
// the replica's aofSize a valid resume offset (and lets replicas chain).
// The offset advances even when no file is configured (or the file is
// broken): it is the replication cursor first, durability second.
// Callers do NOT hold s.mu.
func (s *Server) appendReplicated(raw []byte) {
	s.aofMu.Lock()
	defer s.aofMu.Unlock()
	if s.aof != nil && s.aofErr == nil {
		n, err := s.aof.Write(raw)
		if err == nil && n < len(raw) {
			err = io.ErrShortWrite
		}
		if err == nil && s.aofSync {
			err = s.aof.Sync()
		}
		if err != nil {
			s.aofErr = err
			s.logger.Printf("kvstore: aof broken, appends stopped: %v", err)
		}
	}
	s.aofSize += int64(len(raw))
	s.aofCond.Broadcast()
}

// loadAOF replays the persistence file into memory at startup. A torn
// FINAL record — the signature of a crash mid-append — is dropped and the
// file truncated back to the last record boundary, so later appends can
// never land after garbage. A tear (or corruption) anywhere else errors
// loudly: silently treating it as end-of-log would drop every later
// record and diverge from the state the server actually reached.
func (s *Server) loadAOF() error {
	f, err := os.Open(s.aofPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: opening persistence file: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var good int64
	for {
		rec, err := readAOFRecord(r)
		if errors.Is(err, io.EOF) {
			break // clean end at a record boundary
		}
		if errors.Is(err, errTornRecord) {
			if _, perr := r.ReadByte(); perr == io.EOF {
				// Torn final record: a crash mid-append. Drop it and cut the
				// file back to the boundary so the tear cannot end up in the
				// middle of the log once appends resume.
				if terr := os.Truncate(s.aofPath, good); terr != nil {
					return fmt.Errorf("kvstore: truncating torn persistence tail: %w", terr)
				}
				break
			}
			return fmt.Errorf("kvstore: persistence file corrupt: torn record at offset %d is followed by %s",
				good, "more data (not a crash tail) — refusing to silently drop records")
		}
		if err != nil {
			return err
		}
		if err := s.applyRecordLocked(rec); err != nil {
			return err
		}
		good += int64(rec.encodedLen())
	}
	s.aofSize = good
	return nil
}
