package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"proxystore/internal/netsim"
)

func newPair(t *testing.T, sopts []ServerOption, copts []ClientOption) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", sopts...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewClient(srv.Addr(), copts...)
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestPing(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestSetGet(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, ok, err := cli.Get(ctx, "k")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", got, ok, err)
	}
	if string(got) != "v" {
		t.Fatalf("Get = %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	_, ok, err := cli.Get(context.Background(), "ghost")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ok {
		t.Fatal("Get found a missing key")
	}
}

func TestBinarySafety(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	val := []byte("embedded\r\nCRLF\x00and nulls\xff")
	if err := cli.Set(ctx, "bin", val); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, _, err := cli.Get(ctx, "bin")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("binary value corrupted: %q", got)
	}
}

func TestDelAndExists(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	cli.Set(ctx, "a", []byte("1"))
	cli.Set(ctx, "b", []byte("2"))
	n, err := cli.Exists(ctx, "a", "b", "c")
	if err != nil || n != 2 {
		t.Fatalf("Exists = %d, %v; want 2", n, err)
	}
	deleted, err := cli.Del(ctx, "a", "c")
	if err != nil || deleted != 1 {
		t.Fatalf("Del = %d, %v; want 1", deleted, err)
	}
	n, _ = cli.Exists(ctx, "a")
	if n != 0 {
		t.Fatal("key a survived Del")
	}
}

func TestMGetMSet(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	if err := cli.MSet(ctx, map[string][]byte{"x": []byte("1"), "y": []byte("2")}); err != nil {
		t.Fatalf("MSet: %v", err)
	}
	vals, err := cli.MGet(ctx, "x", "ghost", "y")
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	if string(vals[0]) != "1" || vals[1] != nil || string(vals[2]) != "2" {
		t.Fatalf("MGet = %q", vals)
	}
}

func TestIncr(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	n, err := cli.Incr(ctx, "ctr")
	if err != nil || n != 1 {
		t.Fatalf("Incr new key = %d, %v; want 1", n, err)
	}
	n, err = cli.Incr(ctx, "ctr")
	if err != nil || n != 2 {
		t.Fatalf("second Incr = %d, %v; want 2", n, err)
	}
	if err := cli.Set(ctx, "str", []byte("not a number")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, err := cli.Incr(ctx, "str"); err == nil {
		t.Fatal("Incr of non-integer value succeeded")
	}
}

func TestIncrConcurrent(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := cli.Incr(ctx, "ctr"); err != nil {
					t.Errorf("Incr: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, ok, err := cli.Get(ctx, "ctr")
	if err != nil || !ok {
		t.Fatalf("Get: %v ok=%v", err, ok)
	}
	if string(v) != fmt.Sprint(goroutines*per) {
		t.Fatalf("counter = %s, want %d", v, goroutines*per)
	}
}

func TestIncrBy(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	n, err := cli.IncrBy(ctx, "ctr", 8)
	if err != nil || n != 8 {
		t.Fatalf("IncrBy new key = %d, %v; want 8", n, err)
	}
	n, err = cli.IncrBy(ctx, "ctr", 3)
	if err != nil || n != 11 {
		t.Fatalf("second IncrBy = %d, %v; want 11", n, err)
	}
	// Negative deltas decrement; INCR interoperates with the same counter.
	n, err = cli.IncrBy(ctx, "ctr", -1)
	if err != nil || n != 10 {
		t.Fatalf("negative IncrBy = %d, %v; want 10", n, err)
	}
	n, err = cli.Incr(ctx, "ctr")
	if err != nil || n != 11 {
		t.Fatalf("Incr after IncrBy = %d, %v; want 11", n, err)
	}
	cli.Set(ctx, "str", []byte("not a number"))
	if _, err := cli.IncrBy(ctx, "str", 2); err == nil {
		t.Fatal("IncrBy of non-integer value succeeded")
	}
}

func TestIncrByConcurrentReservesDisjointRanges(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	const goroutines, batch = 8, 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	ends := make(map[int64]bool)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := cli.IncrBy(ctx, "slots", batch)
			if err != nil {
				t.Errorf("IncrBy: %v", err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if ends[n] {
				t.Errorf("range ending at %d reserved twice", n)
			}
			ends[n] = true
		}()
	}
	wg.Wait()
	// Every reservation end must be a distinct multiple of batch: the
	// ranges [n-batch, n) tile without overlap.
	for n := range ends {
		if n%batch != 0 || n <= 0 || n > goroutines*batch {
			t.Fatalf("reservation end %d is not a clean batch boundary", n)
		}
	}
}

func TestCAS(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	// Empty old = SETNX: first claim wins, second loses.
	ok, err := cli.CAS(ctx, "claim", nil, []byte("alice"))
	if err != nil || !ok {
		t.Fatalf("CAS on absent key = %v, %v; want true", ok, err)
	}
	ok, err = cli.CAS(ctx, "claim", nil, []byte("bob"))
	if err != nil || ok {
		t.Fatalf("second SETNX-CAS = %v, %v; want false", ok, err)
	}
	// Swap requires the exact current value.
	ok, err = cli.CAS(ctx, "claim", []byte("carol"), []byte("bob"))
	if err != nil || ok {
		t.Fatalf("CAS with stale old = %v, %v; want false", ok, err)
	}
	ok, err = cli.CAS(ctx, "claim", []byte("alice"), []byte("bob"))
	if err != nil || !ok {
		t.Fatalf("CAS with matching old = %v, %v; want true", ok, err)
	}
	got, _, err := cli.Get(ctx, "claim")
	if err != nil || string(got) != "bob" {
		t.Fatalf("value after CAS = %q, %v", got, err)
	}
	// CAS with old set but key missing must fail.
	ok, err = cli.CAS(ctx, "ghost", []byte("x"), []byte("y"))
	if err != nil || ok {
		t.Fatalf("CAS on missing key with old = %v, %v; want false", ok, err)
	}
}

func TestCASConcurrentSingleWinner(t *testing.T) {
	srv, _ := newPair(t, nil, nil)
	ctx := context.Background()
	const contenders = 8
	var wg sync.WaitGroup
	wins := make(chan int, contenders)
	for g := 0; g < contenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli := NewClient(srv.Addr())
			defer cli.Close()
			ok, err := cli.CAS(ctx, "lease", nil, []byte(fmt.Sprintf("holder-%d", g)))
			if err != nil {
				t.Errorf("CAS: %v", err)
				return
			}
			if ok {
				wins <- g
			}
		}(g)
	}
	wg.Wait()
	close(wins)
	var winners []int
	for g := range wins {
		winners = append(winners, g)
	}
	if len(winners) != 1 {
		t.Fatalf("CAS claim had %d winners (%v), want exactly 1", len(winners), winners)
	}
}

func TestDelRange(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		cli.Set(ctx, fmt.Sprintf("log:%d", i), []byte("e"))
	}
	cli.Set(ctx, "log:other", []byte("kept")) // non-numeric suffix untouched
	n, err := cli.DelRange(ctx, "log:", 2, 7)
	if err != nil || n != 5 {
		t.Fatalf("DelRange = %d, %v; want 5", n, err)
	}
	for i := 0; i < 10; i++ {
		want := int64(1)
		if i >= 2 && i < 7 {
			want = 0
		}
		if got, _ := cli.Exists(ctx, fmt.Sprintf("log:%d", i)); got != want {
			t.Fatalf("log:%d exists = %d, want %d", i, got, want)
		}
	}
	if got, _ := cli.Exists(ctx, "log:other"); got != 1 {
		t.Fatal("DelRange deleted a key outside the numeric range")
	}
	// Empty and inverted ranges are no-ops; oversized ranges are rejected.
	if n, err := cli.DelRange(ctx, "log:", 7, 7); err != nil || n != 0 {
		t.Fatalf("empty DelRange = %d, %v", n, err)
	}
	if n, err := cli.DelRange(ctx, "log:", 9, 2); err != nil || n != 0 {
		t.Fatalf("inverted DelRange = %d, %v", n, err)
	}
	if _, err := cli.DelRange(ctx, "log:", 0, 1<<30); err == nil {
		t.Fatal("oversized DelRange did not error")
	}
}

func TestNewCommandsPersistAcrossRestart(t *testing.T) {
	aof := filepath.Join(t.TempDir(), "store.aof")
	srv, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	cli := NewClient(srv.Addr())
	ctx := context.Background()
	if _, err := cli.IncrBy(ctx, "ctr", 42); err != nil {
		t.Fatalf("IncrBy: %v", err)
	}
	if _, err := cli.CAS(ctx, "claim", nil, []byte("held")); err != nil {
		t.Fatalf("CAS: %v", err)
	}
	for i := 0; i < 4; i++ {
		cli.Set(ctx, fmt.Sprintf("log:%d", i), []byte("e"))
	}
	if _, err := cli.DelRange(ctx, "log:", 0, 3); err != nil {
		t.Fatalf("DelRange: %v", err)
	}
	cli.Close()
	srv.Close()

	srv2, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("restart NewServer: %v", err)
	}
	defer srv2.Close()
	cli2 := NewClient(srv2.Addr())
	defer cli2.Close()
	if v, _, _ := cli2.Get(ctx, "ctr"); string(v) != "42" {
		t.Fatalf("counter after restart = %q, want 42", v)
	}
	if v, _, _ := cli2.Get(ctx, "claim"); string(v) != "held" {
		t.Fatalf("claim after restart = %q, want held", v)
	}
	if n, _ := cli2.Exists(ctx, "log:0", "log:1", "log:2", "log:3"); n != 1 {
		t.Fatalf("%d log keys survived restart, want 1 (only log:3)", n)
	}
}

func TestDBSizeAndFlush(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		cli.Set(ctx, fmt.Sprintf("k%d", i), []byte("v"))
	}
	n, err := cli.DBSize(ctx)
	if err != nil || n != 5 {
		t.Fatalf("DBSize = %d, %v; want 5", n, err)
	}
	if err := cli.FlushAll(ctx); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	n, _ = cli.DBSize(ctx)
	if n != 0 {
		t.Fatalf("DBSize after flush = %d", n)
	}
}

func TestLargeValue(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	val := make([]byte, 4<<20)
	for i := range val {
		val[i] = byte(i)
	}
	if err := cli.Set(ctx, "big", val); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, _, err := cli.Get(ctx, "big")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("large value corrupted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := newPair(t, nil, nil)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli := NewClient(srv.Addr())
			defer cli.Close()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := cli.Set(ctx, key, []byte(key)); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				got, ok, err := cli.Get(ctx, key)
				if err != nil || !ok || string(got) != key {
					t.Errorf("Get(%s) = %q, %v, %v", key, got, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPersistenceAcrossRestart(t *testing.T) {
	aof := filepath.Join(t.TempDir(), "store.aof")
	srv, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	cli := NewClient(srv.Addr())
	ctx := context.Background()
	cli.Set(ctx, "durable", []byte("survives"))
	cli.Set(ctx, "doomed", []byte("deleted"))
	cli.Del(ctx, "doomed")
	cli.Close()
	srv.Close()

	srv2, err := NewServer("127.0.0.1:0", WithPersistence(aof))
	if err != nil {
		t.Fatalf("restart NewServer: %v", err)
	}
	defer srv2.Close()
	cli2 := NewClient(srv2.Addr())
	defer cli2.Close()
	got, ok, err := cli2.Get(ctx, "durable")
	if err != nil || !ok || string(got) != "survives" {
		t.Fatalf("Get after restart = %q, %v, %v", got, ok, err)
	}
	if n, _ := cli2.Exists(ctx, "doomed"); n != 0 {
		t.Fatal("deleted key resurrected after restart")
	}
}

func TestNetworkModelDelaysRequests(t *testing.T) {
	n := netsim.New(1)
	n.AddSite("client", true)
	n.AddSite("server", true)
	if err := n.SetLink("client", "server", netsim.Link{Latency: 15 * time.Millisecond}); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	_, cli := newPair(t, nil, []ClientOption{WithClientNetwork(n, "client", "server")})
	start := time.Now()
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("Ping took %v, want >= 30ms (two one-way delays)", elapsed)
	}
}

func TestServerCountsCommands(t *testing.T) {
	srv, cli := newPair(t, nil, nil)
	ctx := context.Background()
	cli.Ping(ctx)
	cli.Set(ctx, "k", []byte("v"))
	cli.Get(ctx, "k")
	if got := srv.Commands(); got != 3 {
		t.Fatalf("Commands = %d, want 3", got)
	}
}

func TestUnknownCommandReturnsError(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	if _, err := cli.do(context.Background(), "NOSUCHCMD"); err == nil {
		t.Fatal("unknown command did not error")
	}
}

func TestPropertyRoundTripArbitraryValues(t *testing.T) {
	_, cli := newPair(t, nil, nil)
	ctx := context.Background()
	i := 0
	f := func(val []byte) bool {
		i++
		key := fmt.Sprintf("prop-%d", i)
		if err := cli.Set(ctx, key, val); err != nil {
			return false
		}
		got, ok, err := cli.Get(ctx, key)
		if err != nil || !ok {
			return false
		}
		return bytes.Equal(got, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
