// Package dataspaces implements a DataSpaces-like staging service: a shared
// virtual object space for coupled workflows, used as the comparison
// baseline in Figure 6 (paper §2 "Data fabrics" and §5.1).
//
// Like the real system, it runs its transport over the Margo/Mercury RPC
// stack (here: the rpc package over the simulated fabric) and stores
// versioned named objects on a staging server. The paper observed
// "prominent startup overheads, particularly for smaller transfers" on
// Chameleon; the client reproduces that with a one-time connection setup
// cost plus higher per-operation overhead than a bare MargoStore.
package dataspaces

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"proxystore/internal/rdma"
	"proxystore/internal/rpc"
)

// Op names.
const (
	opPut = "dspaces.put"
	opGet = "dspaces.get"
)

// ErrNotFound reports a missing (name, version) pair.
var ErrNotFound = fmt.Errorf("dataspaces: object not found")

// Server is a staging server holding versioned named objects.
type Server struct {
	srv *rpc.Server

	mu   sync.RWMutex
	data map[string][]byte // name\x00version -> bytes
}

func objKey(name string, version uint32) string {
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], version)
	return name + "\x00" + string(v[:])
}

// StartServer attaches a staging server to the fabric at addr/site.
func StartServer(f *rdma.Fabric, addr, site string) (*Server, error) {
	ep, err := f.NewEndpoint(addr, site)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: rpc.NewServer(ep), data: make(map[string][]byte)}
	s.srv.Register(opPut, func(_ context.Context, arg []byte) ([]byte, error) {
		name, version, payload, err := decodePut(arg)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, len(payload))
		copy(buf, payload)
		s.mu.Lock()
		s.data[objKey(name, version)] = buf
		s.mu.Unlock()
		return []byte("ok"), nil
	})
	s.srv.Register(opGet, func(_ context.Context, arg []byte) ([]byte, error) {
		name, version, _, err := decodePut(arg)
		if err != nil {
			return nil, err
		}
		s.mu.RLock()
		data, ok := s.data[objKey(name, version)]
		s.mu.RUnlock()
		if !ok {
			return nil, ErrNotFound
		}
		return data, nil
	})
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Len returns the number of staged objects.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Request layout: 2-byte name length, name, 4-byte version, payload.
func encodePut(name string, version uint32, payload []byte) ([]byte, error) {
	if len(name) > 65535 {
		return nil, fmt.Errorf("dataspaces: name too long")
	}
	out := make([]byte, 0, 6+len(name)+len(payload))
	var nl [2]byte
	binary.BigEndian.PutUint16(nl[:], uint16(len(name)))
	out = append(out, nl[:]...)
	out = append(out, name...)
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], version)
	out = append(out, v[:]...)
	out = append(out, payload...)
	return out, nil
}

func decodePut(arg []byte) (string, uint32, []byte, error) {
	if len(arg) < 6 {
		return "", 0, nil, fmt.Errorf("dataspaces: short request")
	}
	nl := int(binary.BigEndian.Uint16(arg[:2]))
	if len(arg) < 2+nl+4 {
		return "", 0, nil, fmt.Errorf("dataspaces: truncated request")
	}
	name := string(arg[2 : 2+nl])
	version := binary.BigEndian.Uint32(arg[2+nl : 2+nl+4])
	return name, version, arg[2+nl+4:], nil
}

// Client accesses a staging server.
type Client struct {
	c      *rpc.Client
	target string

	// Startup behaviour observed in the paper's Chameleon runs.
	startupOnce sync.Once
	startupCost time.Duration
	opOverhead  time.Duration
	scale       float64
}

// ClientOptions tune the client's modeled overheads.
type ClientOptions struct {
	// StartupCost is a one-time connection/bootstrap delay (nominal,
	// divided by Scale). Default 500ms.
	StartupCost time.Duration
	// OpOverhead is added to every operation (nominal, divided by Scale).
	// Default 3ms — DataSpaces' indexing work on top of raw Margo.
	OpOverhead time.Duration
	// Scale compresses the modeled delays; use the netsim scale. Default 1.
	Scale float64
}

// NewClient attaches a client endpoint to the fabric, targeting the staging
// server at target.
func NewClient(f *rdma.Fabric, addr, site, target string, opts ClientOptions) (*Client, error) {
	ep, err := f.NewEndpoint(addr, site)
	if err != nil {
		return nil, err
	}
	if opts.StartupCost == 0 {
		opts.StartupCost = 500 * time.Millisecond
	}
	if opts.OpOverhead == 0 {
		opts.OpOverhead = 3 * time.Millisecond
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	return &Client{
		c:           rpc.NewClient(ep),
		target:      target,
		startupCost: opts.StartupCost,
		opOverhead:  opts.OpOverhead,
		scale:       opts.Scale,
	}, nil
}

// Close detaches the client.
func (c *Client) Close() error { return c.c.Close() }

func (c *Client) pause(ctx context.Context) error {
	c.startupOnce.Do(func() {
		time.Sleep(time.Duration(float64(c.startupCost) / c.scale))
	})
	d := time.Duration(float64(c.opOverhead) / c.scale)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Put stages an object under (name, version).
func (c *Client) Put(ctx context.Context, name string, version uint32, data []byte) error {
	if err := c.pause(ctx); err != nil {
		return err
	}
	arg, err := encodePut(name, version, data)
	if err != nil {
		return err
	}
	_, err = c.c.Call(ctx, c.target, opPut, arg)
	return err
}

// Get retrieves the object staged under (name, version).
func (c *Client) Get(ctx context.Context, name string, version uint32) ([]byte, error) {
	if err := c.pause(ctx); err != nil {
		return nil, err
	}
	arg, err := encodePut(name, version, nil)
	if err != nil {
		return nil, err
	}
	out, err := c.c.Call(ctx, c.target, opGet, arg)
	if err != nil {
		if containsNotFound(err.Error()) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	return out, nil
}

func containsNotFound(s string) bool {
	const needle = "object not found"
	for i := 0; i+len(needle) <= len(s); i++ {
		if s[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
