package dataspaces

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"proxystore/internal/netsim"
	"proxystore/internal/rdma"
)

func newPair(t *testing.T, opts ClientOptions) (*Server, *Client) {
	t.Helper()
	n := netsim.New(100)
	n.AddSite("n0", true)
	n.AddSite("n1", true)
	n.SetLink("n0", "n1", netsim.Link{Latency: 50 * time.Microsecond, Bandwidth: 4e9})
	f := rdma.NewFabric(n, rdma.MargoProfile())
	srv, err := StartServer(f, "staging", "n0")
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	if opts.Scale == 0 {
		opts.Scale = 100
	}
	cli, err := NewClient(f, "ds-client", "n1", "staging", opts)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestPutGetRoundTrip(t *testing.T) {
	_, cli := newPair(t, ClientOptions{})
	ctx := context.Background()
	data := bytes.Repeat([]byte("ds"), 10_000)
	if err := cli.Put(ctx, "field", 1, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := cli.Get(ctx, "field", 1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("staged object corrupted")
	}
}

func TestVersionsAreDistinct(t *testing.T) {
	_, cli := newPair(t, ClientOptions{})
	ctx := context.Background()
	cli.Put(ctx, "var", 1, []byte("v1"))
	cli.Put(ctx, "var", 2, []byte("v2"))
	got1, err := cli.Get(ctx, "var", 1)
	if err != nil || string(got1) != "v1" {
		t.Fatalf("Get v1 = %q, %v", got1, err)
	}
	got2, err := cli.Get(ctx, "var", 2)
	if err != nil || string(got2) != "v2" {
		t.Fatalf("Get v2 = %q, %v", got2, err)
	}
}

func TestGetMissing(t *testing.T) {
	_, cli := newPair(t, ClientOptions{})
	if _, err := cli.Get(context.Background(), "ghost", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
}

func TestStartupCostPaidOnce(t *testing.T) {
	_, cli := newPair(t, ClientOptions{StartupCost: 2 * time.Second, OpOverhead: time.Microsecond, Scale: 100})
	ctx := context.Background()

	start := time.Now()
	if err := cli.Put(ctx, "first", 1, []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	first := time.Since(start)

	start = time.Now()
	if err := cli.Put(ctx, "second", 1, []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	second := time.Since(start)

	if first < 20*time.Millisecond {
		t.Fatalf("first op took %v, want >= 20ms startup", first)
	}
	if second > first/2 {
		t.Fatalf("second op (%v) should be much cheaper than first (%v)", second, first)
	}
}

func TestServerLen(t *testing.T) {
	srv, cli := newPair(t, ClientOptions{})
	ctx := context.Background()
	cli.Put(ctx, "a", 1, []byte("1"))
	cli.Put(ctx, "b", 1, []byte("2"))
	if srv.Len() != 2 {
		t.Fatalf("Len = %d, want 2", srv.Len())
	}
}
