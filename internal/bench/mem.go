package bench

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// MemSample is a point-in-time snapshot of process memory counters, used by
// the data-plane benchmarks to report allocation and peak-RSS deltas
// between the blob and streamed paths.
type MemSample struct {
	// TotalAlloc is cumulative bytes allocated on the Go heap.
	TotalAlloc uint64
	// HeapAlloc is bytes of live heap at the sample.
	HeapAlloc uint64
	// PeakRSS is the process high-water resident set size in bytes
	// (VmHWM on Linux), or 0 where unavailable.
	PeakRSS uint64
}

// SampleMem reads the current memory counters.
func SampleMem() MemSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSample{
		TotalAlloc: ms.TotalAlloc,
		HeapAlloc:  ms.HeapAlloc,
		PeakRSS:    peakRSS(),
	}
}

// Delta returns counter growth since an earlier sample. PeakRSS is a
// high-water mark, so its delta is how much the peak rose in between;
// counters that regressed report 0.
func (m MemSample) Delta(earlier MemSample) MemSample {
	return MemSample{
		TotalAlloc: sub(m.TotalAlloc, earlier.TotalAlloc),
		HeapAlloc:  sub(m.HeapAlloc, earlier.HeapAlloc),
		PeakRSS:    sub(m.PeakRSS, earlier.PeakRSS),
	}
}

func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// peakRSS reads the process peak resident set from /proc/self/status.
func peakRSS() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
