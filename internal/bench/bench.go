// Package bench provides the statistics and reporting helpers shared by the
// experiment runners in internal/experiments: repeated-measurement summary
// statistics and aligned-column report printing in the spirit of the
// paper's tables and figure series.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary describes repeated duration measurements.
type Summary struct {
	N      int
	Mean   time.Duration
	Std    time.Duration
	Median time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Summarize computes summary statistics for samples.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum float64
	for _, s := range sorted {
		sum += float64(s)
	}
	mean := sum / float64(len(sorted))

	var varSum float64
	for _, s := range sorted {
		d := float64(s) - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(len(sorted)))

	return Summary{
		N:      len(sorted),
		Mean:   time.Duration(mean),
		Std:    time.Duration(std),
		Median: sorted[len(sorted)/2],
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

// Measure runs fn repeats times and summarizes the durations. A failing
// iteration aborts the measurement.
func Measure(repeats int, fn func() error) (Summary, error) {
	if repeats < 1 {
		repeats = 1
	}
	samples := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return Summary{}, err
		}
		samples = append(samples, time.Since(start))
	}
	return Summarize(samples), nil
}

// FormatDuration renders a duration compactly for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}

// FormatBytes renders a byte count compactly (10B, 1KB, 100MB).
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.0fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Report is a printable experiment result: a titled table plus notes.
type Report struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note printed under the table.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print writes the report with aligned columns.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				b.WriteString(fmt.Sprintf("%-*s", widths[i]+2, c))
			} else {
				b.WriteString(c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(r.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
