// Package connectortest provides a conformance battery run against every
// Connector implementation, checking the protocol contract from paper §3.4:
// put returns a retrievable key, get round-trips bytes, exists tracks
// lifecycle, evict is idempotent, and configs rebuild working connectors.
package connectortest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"proxystore/internal/connector"
)

// Options tune the conformance run for backends with unusual properties.
type Options struct {
	// SkipConfigRebuild skips the FromConfig round-trip (for connectors
	// whose config references live infrastructure not shared with the
	// rebuilt instance).
	SkipConfigRebuild bool
	// MaxObjectSize caps the large-object test; zero means 1 MiB.
	MaxObjectSize int
	// SkipConcurrency skips the parallel put/get stress (for single-client
	// backends).
	SkipConcurrency bool
}

// Run exercises the full conformance battery against the connector returned
// by newConn. newConn is called once; the connector is closed afterwards.
func Run(t *testing.T, newConn func(t *testing.T) connector.Connector, opts Options) {
	t.Helper()
	conn := newConn(t)
	t.Cleanup(func() { conn.Close() })
	ctx := context.Background()

	t.Run("PutGetRoundTrip", func(t *testing.T) {
		data := []byte("conformance payload")
		key, err := conn.Put(ctx, data)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if key.ID == "" {
			t.Fatal("Put returned key with empty ID")
		}
		got, err := conn.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Get = %q, want %q", got, data)
		}
	})

	t.Run("EmptyObject", func(t *testing.T) {
		key, err := conn.Put(ctx, nil)
		if err != nil {
			t.Fatalf("Put(nil): %v", err)
		}
		got, err := conn.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("Get = %d bytes, want 0", len(got))
		}
	})

	t.Run("LargeObject", func(t *testing.T) {
		size := opts.MaxObjectSize
		if size == 0 {
			size = 1 << 20
		}
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 31)
		}
		key, err := conn.Put(ctx, data)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := conn.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("large object corrupted in round trip")
		}
	})

	t.Run("ExistsLifecycle", func(t *testing.T) {
		key, err := conn.Put(ctx, []byte("lifecycle"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		ok, err := conn.Exists(ctx, key)
		if err != nil {
			t.Fatalf("Exists: %v", err)
		}
		if !ok {
			t.Fatal("Exists = false for live object")
		}
		if err := conn.Evict(ctx, key); err != nil {
			t.Fatalf("Evict: %v", err)
		}
		ok, err = conn.Exists(ctx, key)
		if err != nil {
			t.Fatalf("Exists after evict: %v", err)
		}
		if ok {
			t.Fatal("Exists = true after evict")
		}
	})

	t.Run("GetEvictedIsNotFound", func(t *testing.T) {
		key, err := conn.Put(ctx, []byte("soon gone"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := conn.Evict(ctx, key); err != nil {
			t.Fatalf("Evict: %v", err)
		}
		if _, err := conn.Get(ctx, key); !errors.Is(err, connector.ErrNotFound) {
			t.Fatalf("Get after evict = %v, want ErrNotFound", err)
		}
	})

	t.Run("EvictIdempotent", func(t *testing.T) {
		key, err := conn.Put(ctx, []byte("x"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := conn.Evict(ctx, key); err != nil {
			t.Fatalf("first Evict: %v", err)
		}
		if err := conn.Evict(ctx, key); err != nil {
			t.Fatalf("second Evict: %v", err)
		}
	})

	t.Run("DistinctKeys", func(t *testing.T) {
		k1, err := conn.Put(ctx, []byte("one"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		k2, err := conn.Put(ctx, []byte("two"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if k1.ID == k2.ID {
			t.Fatal("two puts returned the same key ID")
		}
		v1, err := conn.Get(ctx, k1)
		if err != nil {
			t.Fatalf("Get k1: %v", err)
		}
		if string(v1) != "one" {
			t.Fatalf("Get k1 = %q", v1)
		}
	})

	t.Run("TypeMatchesKey", func(t *testing.T) {
		key, err := conn.Put(ctx, []byte("typed"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if key.Type != conn.Type() {
			t.Fatalf("key.Type = %q, connector.Type() = %q", key.Type, conn.Type())
		}
	})

	if !opts.SkipConcurrency {
		t.Run("ConcurrentPutGet", func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						data := []byte(fmt.Sprintf("g%d-i%d", g, i))
						key, err := conn.Put(ctx, data)
						if err != nil {
							errs <- fmt.Errorf("Put: %w", err)
							return
						}
						got, err := conn.Get(ctx, key)
						if err != nil {
							errs <- fmt.Errorf("Get: %w", err)
							return
						}
						if !bytes.Equal(got, data) {
							errs <- fmt.Errorf("round trip mismatch: %q != %q", got, data)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}

	// --- Streaming and batch conformance ---------------------------------
	//
	// Every connector must behave correctly behind the Streamer surface:
	// native streamers through their own chunked paths, blob-only
	// connectors through the StreamAdapter's buffering fallback.
	st := connector.Stream(conn)

	t.Run("StreamPutGetRoundTrip", func(t *testing.T) {
		const size = 3*connector.DefaultChunkSize + 17 // forces multi-chunk
		max := opts.MaxObjectSize
		if max == 0 {
			max = 1 << 20
		}
		n := size
		if n > max {
			n = max
		}
		key, err := st.PutFrom(ctx, newPatternReader(n))
		if err != nil {
			t.Fatalf("PutFrom: %v", err)
		}
		if key.Size != int64(n) {
			t.Fatalf("key.Size = %d, want %d", key.Size, n)
		}
		var got bytes.Buffer
		if err := st.GetTo(ctx, key, &got); err != nil {
			t.Fatalf("GetTo: %v", err)
		}
		checkPattern(t, got.Bytes(), n)
	})

	t.Run("StreamChunkBoundaries", func(t *testing.T) {
		max := opts.MaxObjectSize
		if max == 0 {
			max = 1 << 20
		}
		sizes := []int{0, 1, connector.DefaultChunkSize - 1,
			connector.DefaultChunkSize, connector.DefaultChunkSize + 1}
		for _, n := range sizes {
			if n > max {
				continue
			}
			key, err := st.PutFrom(ctx, newPatternReader(n))
			if err != nil {
				t.Fatalf("PutFrom(%d): %v", n, err)
			}
			var got bytes.Buffer
			if err := st.GetTo(ctx, key, &got); err != nil {
				t.Fatalf("GetTo(%d): %v", n, err)
			}
			checkPattern(t, got.Bytes(), n)
		}
	})

	t.Run("StreamBlobInterop", func(t *testing.T) {
		// Streamed put must be readable through the blob Get...
		key, err := st.PutFrom(ctx, bytes.NewReader([]byte("streamed in")))
		if err != nil {
			t.Fatalf("PutFrom: %v", err)
		}
		got, err := st.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get of streamed object: %v", err)
		}
		if string(got) != "streamed in" {
			t.Fatalf("Get = %q", got)
		}
		// ...and a blob put must be readable through GetTo.
		key, err = st.Put(ctx, []byte("blobbed in"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		var buf bytes.Buffer
		if err := st.GetTo(ctx, key, &buf); err != nil {
			t.Fatalf("GetTo of blob object: %v", err)
		}
		if buf.String() != "blobbed in" {
			t.Fatalf("GetTo = %q", buf.String())
		}
	})

	t.Run("StreamedKeyLifecycle", func(t *testing.T) {
		key, err := st.PutFrom(ctx, newPatternReader(connector.DefaultChunkSize+5))
		if err != nil {
			t.Fatalf("PutFrom: %v", err)
		}
		ok, err := st.Exists(ctx, key)
		if err != nil {
			t.Fatalf("Exists: %v", err)
		}
		if !ok {
			t.Fatal("Exists = false for live streamed object")
		}
		if err := st.Evict(ctx, key); err != nil {
			t.Fatalf("Evict: %v", err)
		}
		ok, err = st.Exists(ctx, key)
		if err != nil {
			t.Fatalf("Exists after evict: %v", err)
		}
		if ok {
			t.Fatal("Exists = true after evicting streamed object")
		}
		if err := st.GetTo(ctx, key, &bytes.Buffer{}); !errors.Is(err, connector.ErrNotFound) {
			t.Fatalf("GetTo after evict = %v, want ErrNotFound", err)
		}
	})

	t.Run("BatchPutGetRoundTrip", func(t *testing.T) {
		blobs := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charlie")}
		keys, err := st.PutBatch(ctx, blobs)
		if err != nil {
			t.Fatalf("PutBatch: %v", err)
		}
		if len(keys) != len(blobs) {
			t.Fatalf("PutBatch returned %d keys, want %d", len(keys), len(blobs))
		}
		got, err := st.GetBatch(ctx, keys)
		if err != nil {
			t.Fatalf("GetBatch: %v", err)
		}
		for i := range blobs {
			if !bytes.Equal(got[i], blobs[i]) {
				t.Fatalf("GetBatch[%d] = %q, want %q", i, got[i], blobs[i])
			}
		}
		// Batch-stored objects are ordinary objects: single Get works too.
		one, err := st.Get(ctx, keys[1])
		if err != nil {
			t.Fatalf("Get of batch item: %v", err)
		}
		if string(one) != "bravo" {
			t.Fatalf("Get of batch item = %q", one)
		}
	})

	t.Run("BatchEmpty", func(t *testing.T) {
		keys, err := st.PutBatch(ctx, nil)
		if err != nil {
			t.Fatalf("PutBatch(nil): %v", err)
		}
		if len(keys) != 0 {
			t.Fatalf("PutBatch(nil) returned %d keys", len(keys))
		}
		got, err := st.GetBatch(ctx, nil)
		if err != nil {
			t.Fatalf("GetBatch(nil): %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("GetBatch(nil) returned %d results", len(got))
		}
	})

	t.Run("BatchGetMissingIsNotFound", func(t *testing.T) {
		keys, err := st.PutBatch(ctx, [][]byte{[]byte("kept"), []byte("gone")})
		if err != nil {
			t.Fatalf("PutBatch: %v", err)
		}
		if err := st.Evict(ctx, keys[1]); err != nil {
			t.Fatalf("Evict: %v", err)
		}
		if _, err := st.GetBatch(ctx, keys); !errors.Is(err, connector.ErrNotFound) {
			t.Fatalf("GetBatch with evicted key = %v, want ErrNotFound", err)
		}
	})

	if !opts.SkipConfigRebuild {
		t.Run("StreamConfigRebuild", func(t *testing.T) {
			key, err := st.PutFrom(ctx, newPatternReader(connector.DefaultChunkSize+9))
			if err != nil {
				t.Fatalf("PutFrom: %v", err)
			}
			rebuilt, err := connector.FromConfig(conn.Config())
			if err != nil {
				t.Fatalf("FromConfig: %v", err)
			}
			defer rebuilt.Close()
			var got bytes.Buffer
			if err := connector.GetTo(ctx, rebuilt, key, &got); err != nil {
				t.Fatalf("rebuilt GetTo: %v", err)
			}
			checkPattern(t, got.Bytes(), connector.DefaultChunkSize+9)
		})

		t.Run("ConfigRebuild", func(t *testing.T) {
			key, err := conn.Put(ctx, []byte("visible to rebuilt connector"))
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			rebuilt, err := connector.FromConfig(conn.Config())
			if err != nil {
				t.Fatalf("FromConfig: %v", err)
			}
			defer rebuilt.Close()
			got, err := rebuilt.Get(ctx, key)
			if err != nil {
				t.Fatalf("rebuilt Get: %v", err)
			}
			if string(got) != "visible to rebuilt connector" {
				t.Fatalf("rebuilt Get = %q", got)
			}
		})
	}
}

// patternReader emits a deterministic byte pattern without holding the
// object in memory, so streamed-put conformance runs against a true stream.
type patternReader struct {
	off int
	n   int
}

func newPatternReader(n int) *patternReader { return &patternReader{n: n} }

func patternByte(i int) byte { return byte(i*131 + i>>9) }

func (r *patternReader) Read(p []byte) (int, error) {
	if r.off >= r.n {
		return 0, io.EOF
	}
	n := len(p)
	if rem := r.n - r.off; rem < n {
		n = rem
	}
	for i := 0; i < n; i++ {
		p[i] = patternByte(r.off + i)
	}
	r.off += n
	return n, nil
}

// checkPattern verifies got is exactly the first n pattern bytes.
func checkPattern(t *testing.T, got []byte, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("round trip returned %d bytes, want %d", len(got), n)
	}
	for i, b := range got {
		if b != patternByte(i) {
			t.Fatalf("byte %d = %#x, want %#x", i, b, patternByte(i))
		}
	}
}
