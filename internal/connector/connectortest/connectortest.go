// Package connectortest provides a conformance battery run against every
// Connector implementation, checking the protocol contract from paper §3.4:
// put returns a retrievable key, get round-trips bytes, exists tracks
// lifecycle, evict is idempotent, and configs rebuild working connectors.
package connectortest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"proxystore/internal/connector"
)

// Options tune the conformance run for backends with unusual properties.
type Options struct {
	// SkipConfigRebuild skips the FromConfig round-trip (for connectors
	// whose config references live infrastructure not shared with the
	// rebuilt instance).
	SkipConfigRebuild bool
	// MaxObjectSize caps the large-object test; zero means 1 MiB.
	MaxObjectSize int
	// SkipConcurrency skips the parallel put/get stress (for single-client
	// backends).
	SkipConcurrency bool
}

// Run exercises the full conformance battery against the connector returned
// by newConn. newConn is called once; the connector is closed afterwards.
func Run(t *testing.T, newConn func(t *testing.T) connector.Connector, opts Options) {
	t.Helper()
	conn := newConn(t)
	t.Cleanup(func() { conn.Close() })
	ctx := context.Background()

	t.Run("PutGetRoundTrip", func(t *testing.T) {
		data := []byte("conformance payload")
		key, err := conn.Put(ctx, data)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if key.ID == "" {
			t.Fatal("Put returned key with empty ID")
		}
		got, err := conn.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Get = %q, want %q", got, data)
		}
	})

	t.Run("EmptyObject", func(t *testing.T) {
		key, err := conn.Put(ctx, nil)
		if err != nil {
			t.Fatalf("Put(nil): %v", err)
		}
		got, err := conn.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("Get = %d bytes, want 0", len(got))
		}
	})

	t.Run("LargeObject", func(t *testing.T) {
		size := opts.MaxObjectSize
		if size == 0 {
			size = 1 << 20
		}
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 31)
		}
		key, err := conn.Put(ctx, data)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := conn.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("large object corrupted in round trip")
		}
	})

	t.Run("ExistsLifecycle", func(t *testing.T) {
		key, err := conn.Put(ctx, []byte("lifecycle"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		ok, err := conn.Exists(ctx, key)
		if err != nil {
			t.Fatalf("Exists: %v", err)
		}
		if !ok {
			t.Fatal("Exists = false for live object")
		}
		if err := conn.Evict(ctx, key); err != nil {
			t.Fatalf("Evict: %v", err)
		}
		ok, err = conn.Exists(ctx, key)
		if err != nil {
			t.Fatalf("Exists after evict: %v", err)
		}
		if ok {
			t.Fatal("Exists = true after evict")
		}
	})

	t.Run("GetEvictedIsNotFound", func(t *testing.T) {
		key, err := conn.Put(ctx, []byte("soon gone"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := conn.Evict(ctx, key); err != nil {
			t.Fatalf("Evict: %v", err)
		}
		if _, err := conn.Get(ctx, key); !errors.Is(err, connector.ErrNotFound) {
			t.Fatalf("Get after evict = %v, want ErrNotFound", err)
		}
	})

	t.Run("EvictIdempotent", func(t *testing.T) {
		key, err := conn.Put(ctx, []byte("x"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := conn.Evict(ctx, key); err != nil {
			t.Fatalf("first Evict: %v", err)
		}
		if err := conn.Evict(ctx, key); err != nil {
			t.Fatalf("second Evict: %v", err)
		}
	})

	t.Run("DistinctKeys", func(t *testing.T) {
		k1, err := conn.Put(ctx, []byte("one"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		k2, err := conn.Put(ctx, []byte("two"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if k1.ID == k2.ID {
			t.Fatal("two puts returned the same key ID")
		}
		v1, err := conn.Get(ctx, k1)
		if err != nil {
			t.Fatalf("Get k1: %v", err)
		}
		if string(v1) != "one" {
			t.Fatalf("Get k1 = %q", v1)
		}
	})

	t.Run("TypeMatchesKey", func(t *testing.T) {
		key, err := conn.Put(ctx, []byte("typed"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if key.Type != conn.Type() {
			t.Fatalf("key.Type = %q, connector.Type() = %q", key.Type, conn.Type())
		}
	})

	if !opts.SkipConcurrency {
		t.Run("ConcurrentPutGet", func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						data := []byte(fmt.Sprintf("g%d-i%d", g, i))
						key, err := conn.Put(ctx, data)
						if err != nil {
							errs <- fmt.Errorf("Put: %w", err)
							return
						}
						got, err := conn.Get(ctx, key)
						if err != nil {
							errs <- fmt.Errorf("Get: %w", err)
							return
						}
						if !bytes.Equal(got, data) {
							errs <- fmt.Errorf("round trip mismatch: %q != %q", got, data)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}

	if !opts.SkipConfigRebuild {
		t.Run("ConfigRebuild", func(t *testing.T) {
			key, err := conn.Put(ctx, []byte("visible to rebuilt connector"))
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			rebuilt, err := connector.FromConfig(conn.Config())
			if err != nil {
				t.Fatalf("FromConfig: %v", err)
			}
			defer rebuilt.Close()
			got, err := rebuilt.Get(ctx, key)
			if err != nil {
				t.Fatalf("rebuilt Get: %v", err)
			}
			if string(got) != "visible to rebuilt connector" {
				t.Fatalf("rebuilt Get = %q", got)
			}
		})
	}
}
