// Package connector defines the Connector protocol: the low-level interface
// to a mediated communication channel (paper §3.4).
//
// A Connector moves opaque byte strings. Put stores bytes and returns a Key
// (a small tuple of metadata) that any process can later hand to Get. The
// Store layers object semantics (serialization, caching, proxies) on top.
//
// Connectors are registered by type name so that a Config travelling inside
// a proxy factory can be turned back into a live Connector on a process
// that has never seen the original instance — the mechanism behind the
// paper's "proxies are self-contained" property.
package connector

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Key uniquely identifies an object stored in a mediated channel. Keys are
// small, comparable-by-value (excluding Attrs), and safe to serialize into
// proxy factories.
type Key struct {
	// ID is the unique object identifier assigned by Put.
	ID string
	// Type is the connector type that produced the key (e.g. "redis").
	Type string
	// Size is the stored byte-string length, when known. Policy routing in
	// the MultiConnector and cache accounting use it.
	Size int64
	// Attrs carries backend-specific metadata, e.g. the Globus transfer
	// task ID or the producing PS-endpoint UUID.
	Attrs map[string]string
}

// String renders the key for logs and errors.
func (k Key) String() string {
	if len(k.Attrs) == 0 {
		return fmt.Sprintf("%s:%s", k.Type, k.ID)
	}
	names := make([]string, 0, len(k.Attrs))
	for name := range k.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	s := fmt.Sprintf("%s:%s", k.Type, k.ID)
	for _, name := range names {
		s += fmt.Sprintf(" %s=%s", name, k.Attrs[name])
	}
	return s
}

// Attr returns a backend-specific attribute, or "" when unset.
func (k Key) Attr(name string) string {
	if k.Attrs == nil {
		return ""
	}
	return k.Attrs[name]
}

// WithAttr returns a copy of the key with the attribute set.
func (k Key) WithAttr(name, value string) Key {
	attrs := make(map[string]string, len(k.Attrs)+1)
	for n, v := range k.Attrs {
		attrs[n] = v
	}
	attrs[name] = value
	k.Attrs = attrs
	return k
}

// NewID returns a fresh 128-bit hex object identifier.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("connector: reading randomness: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Config is a serializable description of a connector sufficient to
// reconstruct an equivalent instance in another process.
type Config struct {
	// Type names the connector implementation in the registry.
	Type string
	// Params holds implementation-specific settings (addresses, paths...).
	Params map[string]string
}

// Param returns a config parameter, or def when unset.
func (c Config) Param(name, def string) string {
	if v, ok := c.Params[name]; ok {
		return v
	}
	return def
}

// Connector is the protocol all mediated channels implement. Implementations
// must be safe for concurrent use.
type Connector interface {
	// Type returns the registry type name of the connector.
	Type() string
	// Config returns a description sufficient to reconstruct the connector
	// in another process.
	Config() Config
	// Put stores data and returns its key.
	Put(ctx context.Context, data []byte) (Key, error)
	// Get retrieves the byte string for key. It returns ErrNotFound if the
	// object does not exist (e.g. already evicted).
	Get(ctx context.Context, key Key) ([]byte, error)
	// Exists reports whether key currently resolves to an object.
	Exists(ctx context.Context, key Key) (bool, error)
	// Evict removes the object; evicting a missing key is not an error.
	Evict(ctx context.Context, key Key) error
	// Close releases connector resources. Objects in persistent channels
	// survive Close.
	Close() error
}

// BatchPutter is implemented by connectors that can store several objects
// in one backend operation (e.g. a single Globus transfer task, used by
// Store.ProxyBatch).
type BatchPutter interface {
	PutBatch(ctx context.Context, data [][]byte) ([]Key, error)
}

// ErrNotFound is returned by Get when a key has no object, typically
// because it was evicted.
var ErrNotFound = fmt.Errorf("connector: object not found")

// Builder constructs a connector from its serialized config.
type Builder func(Config) (Connector, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Builder)
)

// Register installs a builder for a connector type. Connector packages call
// Register from init so that FromConfig works after a blank import.
func Register(typ string, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[typ] = b
}

// FromConfig reconstructs a connector from its config using the registry.
func FromConfig(cfg Config) (Connector, error) {
	regMu.RLock()
	b, ok := registry[cfg.Type]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("connector: no builder registered for type %q", cfg.Type)
	}
	return b(cfg)
}

// RegisteredTypes returns the sorted list of known connector types.
func RegisteredTypes() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for typ := range registry {
		out = append(out, typ)
	}
	sort.Strings(out)
	return out
}
