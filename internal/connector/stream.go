// Streaming and batching extensions to the Connector protocol.
//
// The base Connector moves whole byte strings, which makes peak memory and
// latency O(object) at every layer. The interfaces here let connectors move
// data in O(chunk) memory instead: StreamPutter/StreamGetter stream object
// bytes through io.Reader/io.Writer, and BatchPutter/BatchGetter move many
// objects per backend round trip. Connectors implement whichever subset is
// natural for their backend; callers program against the Streamer union via
// Stream, which wraps blob-only connectors in a correct (buffering)
// StreamAdapter fallback.
package connector

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
)

// DefaultChunkSize is the transfer granularity of the streamed data plane:
// native streaming connectors buffer at most this many bytes per object in
// flight, so peak connector-side memory is O(chunk), not O(object).
const DefaultChunkSize = 256 << 10

// ChunkCountAttr is the key attribute carrying the chunk manifest for
// connectors that shard streamed objects across several backend keys
// (e.g. the redis connector). Its value is the decimal chunk count.
const ChunkCountAttr = "chunks"

// ChunkCount returns the number of backend chunks the key's object is
// sharded into, or 0 when the object is stored whole. Size-aware policy
// routing can use this instead of materializing the object.
func (k Key) ChunkCount() int {
	n, err := strconv.Atoi(k.Attr(ChunkCountAttr))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// StreamPutter is implemented by connectors that can ingest an object from
// a reader without materializing it.
type StreamPutter interface {
	// PutFrom stores the stream's bytes and returns the object's key,
	// reading r to EOF. Peak memory is O(chunk) for native implementations.
	PutFrom(ctx context.Context, r io.Reader) (Key, error)
}

// TaggedPutter is implemented by connectors whose placement can be
// constrained with tags — the multi connector routes a tagged put to the
// highest-priority child whose policy carries every required tag. Plain
// single-backend connectors do not implement it; callers that require tag
// placement must treat its absence as an error rather than silently
// dropping the constraint.
type TaggedPutter interface {
	// PutTagged stores data under the placement constraints in tags (nil
	// means unconstrained, equivalent to Put).
	PutTagged(ctx context.Context, data []byte, tags []string) (Key, error)
}

// TaggedStreamPutter is the streaming pair of TaggedPutter: ingest from a
// reader under tag placement constraints without materializing the object.
type TaggedStreamPutter interface {
	PutFromTagged(ctx context.Context, r io.Reader, tags []string) (Key, error)
}

// StreamGetter is implemented by connectors that can emit an object into a
// writer without materializing it.
type StreamGetter interface {
	// GetTo writes the object's bytes to w. It returns ErrNotFound when the
	// key has no object; bytes may have been partially written only when a
	// mid-transfer error occurs.
	GetTo(ctx context.Context, key Key, w io.Writer) error
}

// BatchGetter is the read-side pair of BatchPutter: connectors that can
// fetch several objects in one backend operation implement it (e.g. one
// MGET round trip to redis). A missing key fails the batch with ErrNotFound.
type BatchGetter interface {
	GetBatch(ctx context.Context, keys []Key) ([][]byte, error)
}

// Streamer is the full streamed/batched data-plane surface. Callers obtain
// one with Stream and program against this single API regardless of which
// subset the underlying connector implements natively.
type Streamer interface {
	Connector
	StreamPutter
	StreamGetter
	BatchPutter
	BatchGetter
}

// Stream returns c as a Streamer. Connectors that already implement the
// full surface are returned as-is; anything else is wrapped in a
// StreamAdapter that delegates to native interfaces where present and
// falls back to correct buffering otherwise.
func Stream(c Connector) Streamer {
	if s, ok := c.(Streamer); ok {
		return s
	}
	if a, ok := c.(*StreamAdapter); ok {
		return a
	}
	return &StreamAdapter{conn: c}
}

// PutFrom streams r into c, using the native streaming path when available.
func PutFrom(ctx context.Context, c Connector, r io.Reader) (Key, error) {
	return Stream(c).PutFrom(ctx, r)
}

// GetTo streams key's object from c into w, using the native streaming path
// when available.
func GetTo(ctx context.Context, c Connector, key Key, w io.Writer) error {
	return Stream(c).GetTo(ctx, key, w)
}

// StreamAdapter lifts any Connector to the Streamer surface. Operations the
// underlying connector supports natively are delegated; the rest fall back
// to buffering through the blob API, which is correct but O(object).
type StreamAdapter struct {
	conn Connector
}

// NewStreamAdapter wraps c. Most callers should use Stream instead, which
// avoids double-wrapping and skips the adapter for native Streamers.
func NewStreamAdapter(c Connector) *StreamAdapter {
	return &StreamAdapter{conn: c}
}

// Unwrap returns the adapted connector.
func (a *StreamAdapter) Unwrap() Connector { return a.conn }

// Type implements Connector.
func (a *StreamAdapter) Type() string { return a.conn.Type() }

// Config implements Connector. The config describes the underlying
// connector; rebuilt instances are re-adapted at the call site via Stream.
func (a *StreamAdapter) Config() Config { return a.conn.Config() }

// Put implements Connector.
func (a *StreamAdapter) Put(ctx context.Context, data []byte) (Key, error) {
	return a.conn.Put(ctx, data)
}

// Get implements Connector.
func (a *StreamAdapter) Get(ctx context.Context, key Key) ([]byte, error) {
	return a.conn.Get(ctx, key)
}

// Exists implements Connector.
func (a *StreamAdapter) Exists(ctx context.Context, key Key) (bool, error) {
	return a.conn.Exists(ctx, key)
}

// Evict implements Connector.
func (a *StreamAdapter) Evict(ctx context.Context, key Key) error {
	return a.conn.Evict(ctx, key)
}

// Close implements Connector.
func (a *StreamAdapter) Close() error { return a.conn.Close() }

// PutFrom implements StreamPutter, buffering the whole stream when the
// underlying connector cannot ingest readers natively.
func (a *StreamAdapter) PutFrom(ctx context.Context, r io.Reader) (Key, error) {
	if sp, ok := a.conn.(StreamPutter); ok {
		return sp.PutFrom(ctx, r)
	}
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		return Key{}, fmt.Errorf("%s: buffering stream put: %w", a.conn.Type(), err)
	}
	return a.conn.Put(ctx, buf.Bytes())
}

// GetTo implements StreamGetter, buffering the whole object when the
// underlying connector cannot emit to writers natively.
func (a *StreamAdapter) GetTo(ctx context.Context, key Key, w io.Writer) error {
	if sg, ok := a.conn.(StreamGetter); ok {
		return sg.GetTo(ctx, key, w)
	}
	data, err := a.conn.Get(ctx, key)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("%s: writing buffered object: %w", a.conn.Type(), err)
	}
	return nil
}

// PutBatch implements BatchPutter, falling back to one Put per object.
func (a *StreamAdapter) PutBatch(ctx context.Context, blobs [][]byte) ([]Key, error) {
	if bp, ok := a.conn.(BatchPutter); ok {
		return bp.PutBatch(ctx, blobs)
	}
	keys := make([]Key, len(blobs))
	for i, b := range blobs {
		k, err := a.conn.Put(ctx, b)
		if err != nil {
			return nil, fmt.Errorf("%s: batch put item %d: %w", a.conn.Type(), i, err)
		}
		keys[i] = k
	}
	return keys, nil
}

// GetBatch implements BatchGetter, falling back to one Get per key.
func (a *StreamAdapter) GetBatch(ctx context.Context, keys []Key) ([][]byte, error) {
	if bg, ok := a.conn.(BatchGetter); ok {
		return bg.GetBatch(ctx, keys)
	}
	out := make([][]byte, len(keys))
	for i, k := range keys {
		data, err := a.conn.Get(ctx, k)
		if err != nil {
			return nil, fmt.Errorf("%s: batch get item %d (%s): %w", a.conn.Type(), i, k, err)
		}
		out[i] = data
	}
	return out, nil
}
