// Package distmem implements the distributed in-memory object stores behind
// the paper's Margo, UCX, and ZMQ connectors (§4.1.3). When one of those
// connectors is first initialized on a node it spawns a storage server for
// that node; the servers across nodes collectively form an elastic
// distributed store, and keys remember their producing node so consumers
// fetch directly from where data lives.
//
// Two transports are provided: fabric servers speak the Mercury-style RPC
// layer over the simulated RDMA fabric (Margo/UCX), and TCP servers speak
// framed msgnet messages (ZMQ fallback).
package distmem

import (
	"context"
	"fmt"
	"sync"

	"proxystore/internal/msgnet"
	"proxystore/internal/rdma"
	"proxystore/internal/rpc"
)

// storage is the node-local object map shared by both transports.
type storage struct {
	mu   sync.RWMutex
	data map[string][]byte
}

func newStorage() *storage { return &storage{data: make(map[string][]byte)} }

func (s *storage) put(id string, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	s.mu.Lock()
	s.data[id] = buf
	s.mu.Unlock()
}

func (s *storage) get(id string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[id]
	return v, ok
}

func (s *storage) del(id string) {
	s.mu.Lock()
	delete(s.data, id)
	s.mu.Unlock()
}

func (s *storage) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Op names shared by both transports.
const (
	opPut    = "distmem.put"
	opGet    = "distmem.get"
	opExists = "distmem.exists"
	opEvict  = "distmem.evict"
)

// ErrNotFound reports a missing object id.
var ErrNotFound = fmt.Errorf("distmem: object not found")

// --- Fabric transport (Margo/UCX) ----------------------------------------

// FabricServer is a node storage server reachable over the RDMA fabric.
type FabricServer struct {
	store *storage
	srv   *rpc.Server
	addr  string
}

// StartFabricServer attaches a storage server to the fabric at addr/site.
// Put requests carry "id\x00payload"; get/exists/evict carry the id.
func StartFabricServer(f *rdma.Fabric, addr, site string) (*FabricServer, error) {
	ep, err := f.NewEndpoint(addr, site)
	if err != nil {
		return nil, err
	}
	fs := &FabricServer{store: newStorage(), srv: rpc.NewServer(ep), addr: addr}
	fs.srv.Register(opPut, func(_ context.Context, arg []byte) ([]byte, error) {
		id, payload, err := splitIDPayload(arg)
		if err != nil {
			return nil, err
		}
		fs.store.put(id, payload)
		return []byte("ok"), nil
	})
	fs.srv.Register(opGet, func(_ context.Context, arg []byte) ([]byte, error) {
		data, ok := fs.store.get(string(arg))
		if !ok {
			return nil, ErrNotFound
		}
		return data, nil
	})
	fs.srv.Register(opExists, func(_ context.Context, arg []byte) ([]byte, error) {
		if _, ok := fs.store.get(string(arg)); ok {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	})
	fs.srv.Register(opEvict, func(_ context.Context, arg []byte) ([]byte, error) {
		fs.store.del(string(arg))
		return []byte("ok"), nil
	})
	return fs, nil
}

// Addr returns the server's fabric address.
func (fs *FabricServer) Addr() string { return fs.addr }

// Len returns the number of stored objects.
func (fs *FabricServer) Len() int { return fs.store.len() }

// Close stops the server.
func (fs *FabricServer) Close() error { return fs.srv.Close() }

// FabricClient issues storage operations to fabric servers.
type FabricClient struct {
	c *rpc.Client
}

// NewFabricClient attaches a client endpoint to the fabric.
func NewFabricClient(f *rdma.Fabric, addr, site string) (*FabricClient, error) {
	ep, err := f.NewEndpoint(addr, site)
	if err != nil {
		return nil, err
	}
	return &FabricClient{c: rpc.NewClient(ep)}, nil
}

// Close detaches the client.
func (c *FabricClient) Close() error { return c.c.Close() }

// Put stores data under id on the server at target.
func (c *FabricClient) Put(ctx context.Context, target, id string, data []byte) error {
	arg := joinIDPayload(id, data)
	_, err := c.c.Call(ctx, target, opPut, arg)
	return err
}

// Get fetches id from the server at target.
func (c *FabricClient) Get(ctx context.Context, target, id string) ([]byte, bool, error) {
	data, err := c.c.Call(ctx, target, opGet, []byte(id))
	if err != nil {
		if isNotFound(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return data, true, nil
}

// Exists reports whether id exists on the server at target.
func (c *FabricClient) Exists(ctx context.Context, target, id string) (bool, error) {
	out, err := c.c.Call(ctx, target, opExists, []byte(id))
	if err != nil {
		return false, err
	}
	return len(out) == 1 && out[0] == 1, nil
}

// Evict removes id from the server at target.
func (c *FabricClient) Evict(ctx context.Context, target, id string) error {
	_, err := c.c.Call(ctx, target, opEvict, []byte(id))
	return err
}

// --- TCP transport (ZMQ fallback) ----------------------------------------

// TCPServer is a node storage server reachable over framed TCP messaging.
type TCPServer struct {
	store *storage
	srv   *msgnet.Server
}

// StartTCPServer starts a storage server on a TCP address.
// Request framing: 1-byte op, 1-byte id length, id, payload.
func StartTCPServer(addr string) (*TCPServer, error) {
	ts := &TCPServer{store: newStorage()}
	srv, err := msgnet.NewServer(addr, ts.handle)
	if err != nil {
		return nil, err
	}
	ts.srv = srv
	return ts, nil
}

// Addr returns the server's TCP address.
func (ts *TCPServer) Addr() string { return ts.srv.Addr() }

// Len returns the number of stored objects.
func (ts *TCPServer) Len() int { return ts.store.len() }

// Close stops the server.
func (ts *TCPServer) Close() error { return ts.srv.Close() }

const (
	tcpOpPut    byte = 1
	tcpOpGet    byte = 2
	tcpOpExists byte = 3
	tcpOpEvict  byte = 4
)

func (ts *TCPServer) handle(_ context.Context, req []byte) ([]byte, error) {
	if len(req) < 2 {
		return nil, fmt.Errorf("distmem: short request")
	}
	op := req[0]
	idLen := int(req[1])
	if len(req) < 2+idLen {
		return nil, fmt.Errorf("distmem: truncated id")
	}
	id := string(req[2 : 2+idLen])
	payload := req[2+idLen:]
	switch op {
	case tcpOpPut:
		ts.store.put(id, payload)
		return nil, nil
	case tcpOpGet:
		data, ok := ts.store.get(id)
		if !ok {
			return nil, ErrNotFound
		}
		return data, nil
	case tcpOpExists:
		if _, ok := ts.store.get(id); ok {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	case tcpOpEvict:
		ts.store.del(id)
		return nil, nil
	default:
		return nil, fmt.Errorf("distmem: unknown op %d", op)
	}
}

// TCPClient issues storage operations to TCP servers, caching one msgnet
// client per target address.
type TCPClient struct {
	opts []msgnet.ClientOption

	mu      sync.Mutex
	clients map[string]*msgnet.Client
}

// NewTCPClient returns a client; opts apply to every per-target connection
// (e.g. a netsim model).
func NewTCPClient(opts ...msgnet.ClientOption) *TCPClient {
	return &TCPClient{opts: opts, clients: make(map[string]*msgnet.Client)}
}

// Close drops all per-target connections.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clients {
		cl.Close()
	}
	c.clients = nil
	return nil
}

func (c *TCPClient) client(target string) (*msgnet.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clients == nil {
		return nil, fmt.Errorf("distmem: client closed")
	}
	if cl, ok := c.clients[target]; ok {
		return cl, nil
	}
	cl := msgnet.NewClient(target, c.opts...)
	c.clients[target] = cl
	return cl, nil
}

func (c *TCPClient) request(ctx context.Context, target string, op byte, id string, payload []byte) ([]byte, error) {
	if len(id) > 255 {
		return nil, fmt.Errorf("distmem: id too long")
	}
	cl, err := c.client(target)
	if err != nil {
		return nil, err
	}
	req := make([]byte, 0, 2+len(id)+len(payload))
	req = append(req, op, byte(len(id)))
	req = append(req, id...)
	req = append(req, payload...)
	return cl.Request(ctx, req)
}

// Put stores data under id on the server at target.
func (c *TCPClient) Put(ctx context.Context, target, id string, data []byte) error {
	_, err := c.request(ctx, target, tcpOpPut, id, data)
	return err
}

// Get fetches id from the server at target.
func (c *TCPClient) Get(ctx context.Context, target, id string) ([]byte, bool, error) {
	data, err := c.request(ctx, target, tcpOpGet, id, nil)
	if err != nil {
		if isNotFound(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return data, true, nil
}

// Exists reports whether id exists on the server at target.
func (c *TCPClient) Exists(ctx context.Context, target, id string) (bool, error) {
	out, err := c.request(ctx, target, tcpOpExists, id, nil)
	if err != nil {
		return false, err
	}
	return len(out) == 1 && out[0] == 1, nil
}

// Evict removes id from the server at target.
func (c *TCPClient) Evict(ctx context.Context, target, id string) error {
	_, err := c.request(ctx, target, tcpOpEvict, id, nil)
	return err
}

// --- helpers ---------------------------------------------------------------

func joinIDPayload(id string, payload []byte) []byte {
	out := make([]byte, 0, len(id)+1+len(payload))
	out = append(out, id...)
	out = append(out, 0)
	out = append(out, payload...)
	return out
}

func splitIDPayload(arg []byte) (string, []byte, error) {
	for i, b := range arg {
		if b == 0 {
			return string(arg[:i]), arg[i+1:], nil
		}
	}
	return "", nil, fmt.Errorf("distmem: malformed put request")
}

func isNotFound(err error) bool {
	// Errors cross transport boundaries as strings; match the message.
	return err != nil && (err == ErrNotFound || containsNotFound(err.Error()))
}

func containsNotFound(s string) bool {
	const needle = "object not found"
	for i := 0; i+len(needle) <= len(s); i++ {
		if s[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
