package distmem

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"proxystore/internal/netsim"
	"proxystore/internal/rdma"
)

func newFabric(t *testing.T) *rdma.Fabric {
	t.Helper()
	n := netsim.New(1)
	n.AddSite("node0", true)
	n.AddSite("node1", true)
	n.SetLink("node0", "node1", netsim.Link{Latency: 100 * time.Microsecond, Bandwidth: 5e9})
	return rdma.NewFabric(n, rdma.MargoProfile())
}

func TestFabricPutGet(t *testing.T) {
	f := newFabric(t)
	srv, err := StartFabricServer(f, "store0", "node0")
	if err != nil {
		t.Fatalf("StartFabricServer: %v", err)
	}
	defer srv.Close()
	cli, err := NewFabricClient(f, "cli0", "node1")
	if err != nil {
		t.Fatalf("NewFabricClient: %v", err)
	}
	defer cli.Close()

	ctx := context.Background()
	if err := cli.Put(ctx, "store0", "obj1", []byte("fabric data")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := cli.Get(ctx, "store0", "obj1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", got, ok, err)
	}
	if string(got) != "fabric data" {
		t.Fatalf("Get = %q", got)
	}
	if srv.Len() != 1 {
		t.Fatalf("server Len = %d", srv.Len())
	}
}

func TestFabricGetMissing(t *testing.T) {
	f := newFabric(t)
	srv, _ := StartFabricServer(f, "store-miss", "node0")
	defer srv.Close()
	cli, _ := NewFabricClient(f, "cli-miss", "node0")
	defer cli.Close()
	_, ok, err := cli.Get(context.Background(), "store-miss", "ghost")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ok {
		t.Fatal("Get found missing object")
	}
}

func TestFabricExistsEvict(t *testing.T) {
	f := newFabric(t)
	srv, _ := StartFabricServer(f, "store-ee", "node0")
	defer srv.Close()
	cli, _ := NewFabricClient(f, "cli-ee", "node0")
	defer cli.Close()
	ctx := context.Background()
	cli.Put(ctx, "store-ee", "k", []byte("v"))
	ok, err := cli.Exists(ctx, "store-ee", "k")
	if err != nil || !ok {
		t.Fatalf("Exists = %v, %v", ok, err)
	}
	if err := cli.Evict(ctx, "store-ee", "k"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	ok, _ = cli.Exists(ctx, "store-ee", "k")
	if ok {
		t.Fatal("object survived evict")
	}
}

func TestFabricLargeObjectUsesRendezvous(t *testing.T) {
	f := newFabric(t)
	srv, _ := StartFabricServer(f, "store-big", "node0")
	defer srv.Close()
	cli, _ := NewFabricClient(f, "cli-big", "node1")
	defer cli.Close()
	ctx := context.Background()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 3)
	}
	if err := cli.Put(ctx, "store-big", "big", big); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := cli.Get(ctx, "store-big", "big")
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large object corrupted through bulk path")
	}
}

func TestTCPPutGet(t *testing.T) {
	srv, err := StartTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartTCPServer: %v", err)
	}
	defer srv.Close()
	cli := NewTCPClient()
	defer cli.Close()
	ctx := context.Background()
	if err := cli.Put(ctx, srv.Addr(), "tcp1", []byte("over tcp")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := cli.Get(ctx, srv.Addr(), "tcp1")
	if err != nil || !ok || string(got) != "over tcp" {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
}

func TestTCPGetMissing(t *testing.T) {
	srv, _ := StartTCPServer("127.0.0.1:0")
	defer srv.Close()
	cli := NewTCPClient()
	defer cli.Close()
	_, ok, err := cli.Get(context.Background(), srv.Addr(), "nothing")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ok {
		t.Fatal("found missing object")
	}
}

func TestTCPMultiServerRouting(t *testing.T) {
	// Elastic store: two node servers, one client fetching from each.
	s1, _ := StartTCPServer("127.0.0.1:0")
	defer s1.Close()
	s2, _ := StartTCPServer("127.0.0.1:0")
	defer s2.Close()
	cli := NewTCPClient()
	defer cli.Close()
	ctx := context.Background()
	cli.Put(ctx, s1.Addr(), "on1", []byte("node one"))
	cli.Put(ctx, s2.Addr(), "on2", []byte("node two"))

	v1, _, _ := cli.Get(ctx, s1.Addr(), "on1")
	v2, _, _ := cli.Get(ctx, s2.Addr(), "on2")
	if string(v1) != "node one" || string(v2) != "node two" {
		t.Fatalf("routing mixed up: %q %q", v1, v2)
	}
	if _, ok, _ := cli.Get(ctx, s1.Addr(), "on2"); ok {
		t.Fatal("object leaked across node servers")
	}
}

func TestTCPExistsEvict(t *testing.T) {
	srv, _ := StartTCPServer("127.0.0.1:0")
	defer srv.Close()
	cli := NewTCPClient()
	defer cli.Close()
	ctx := context.Background()
	cli.Put(ctx, srv.Addr(), "e", []byte("x"))
	if ok, _ := cli.Exists(ctx, srv.Addr(), "e"); !ok {
		t.Fatal("Exists = false")
	}
	cli.Evict(ctx, srv.Addr(), "e")
	if ok, _ := cli.Exists(ctx, srv.Addr(), "e"); ok {
		t.Fatal("object survived evict")
	}
}

func TestSplitJoinIDPayload(t *testing.T) {
	id, payload, err := splitIDPayload(joinIDPayload("abc", []byte{1, 0, 2}))
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if id != "abc" || !bytes.Equal(payload, []byte{1, 0, 2}) {
		t.Fatalf("split = %q, %v", id, payload)
	}
	if _, _, err := splitIDPayload([]byte("no-separator")); err == nil {
		t.Fatal("split accepted malformed input")
	}
}

func TestConcurrentFabricClients(t *testing.T) {
	f := newFabric(t)
	srv, _ := StartFabricServer(f, "store-conc", "node0")
	defer srv.Close()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			cli, err := NewFabricClient(f, fmt.Sprintf("conc-cli-%d", i), "node1")
			if err != nil {
				done <- err
				return
			}
			defer cli.Close()
			ctx := context.Background()
			for j := 0; j < 10; j++ {
				id := fmt.Sprintf("c%d-%d", i, j)
				if err := cli.Put(ctx, "store-conc", id, []byte(id)); err != nil {
					done <- err
					return
				}
				got, ok, err := cli.Get(ctx, "store-conc", id)
				if err != nil || !ok || string(got) != id {
					done <- fmt.Errorf("get %s = %q, %v, %v", id, got, ok, err)
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
