// Package proxy implements lazy, transparent object proxies — the paper's
// core abstraction (§3.3).
//
// A Proxy[T] is initialized with a Factory rather than a target value and
// resolves the target just in time, on first access. Python ProxyStore
// achieves transparency with dynamic attribute interception; Go has no
// metaprogramming, so transparency is expressed through the type system: a
// Proxy[T] is used wherever a T is expected by calling Value, and adapter
// helpers forward common stdlib interfaces. Exactly as in the paper, a
// serialized proxy contains only its factory, never the target, so proxies
// are cheap to communicate and remain resolvable in any process.
package proxy

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
)

// Factory produces the target object of a proxy. Factories must be safe to
// call from any goroutine; a proxy calls its factory at most once unless
// the cached target is released.
type Factory[T any] interface {
	Resolve(ctx context.Context) (T, error)
}

// Func adapts an ordinary function into a Factory.
type Func[T any] func(ctx context.Context) (T, error)

// Resolve implements Factory.
func (f Func[T]) Resolve(ctx context.Context) (T, error) { return f(ctx) }

// Static is a factory that returns a fixed value; useful in tests and for
// wrapping already-materialized data.
type Static[T any] struct{ Value T }

// Resolve implements Factory.
func (s Static[T]) Resolve(context.Context) (T, error) { return s.Value, nil }

// Proxy is a lazy reference to a value of type T. The zero Proxy is invalid;
// construct with New or by deserializing.
//
// A Proxy is safe for concurrent use.
type Proxy[T any] struct {
	mu       sync.Mutex
	factory  Factory[T]
	resolved bool
	value    T
	pending  *pendingResolve[T]
}

// pendingResolve carries an in-flight async resolution. value and err are
// written by the resolving goroutine strictly before done is closed and are
// immutable afterwards, so waiters read them without locking.
type pendingResolve[T any] struct {
	done  chan struct{}
	value T
	err   error
}

// New returns a proxy that resolves its target with factory on first use.
func New[T any](factory Factory[T]) *Proxy[T] {
	if factory == nil {
		panic("proxy: nil factory")
	}
	return &Proxy[T]{factory: factory}
}

// FromValue returns an already-resolved proxy wrapping v. Serializing such
// a proxy still requires a describable factory, so FromValue proxies are
// process-local conveniences.
func FromValue[T any](v T) *Proxy[T] {
	return &Proxy[T]{factory: Static[T]{Value: v}, resolved: true, value: v}
}

// Value resolves the proxy if needed and returns the target. Subsequent
// calls return the cached target without touching the factory.
//
// A Value call that overlaps an in-flight ResolveAsync waits for it and
// observes its outcome, including a resolution error. A failed async
// resolve leaves the proxy unresolved, so a later (non-overlapping) Value
// call retries the factory.
func (p *Proxy[T]) Value(ctx context.Context) (T, error) {
	p.mu.Lock()
	if p.resolved {
		v := p.value
		p.mu.Unlock()
		return v, nil
	}
	pending := p.pending
	p.mu.Unlock()

	if pending != nil {
		select {
		case <-pending.done:
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
		if pending.err != nil {
			var zero T
			return zero, fmt.Errorf("proxy: resolving target: %w", pending.err)
		}
		return p.Value(ctx)
	}

	v, err := p.factoryRef().Resolve(ctx)
	if err != nil {
		var zero T
		return zero, fmt.Errorf("proxy: resolving target: %w", err)
	}
	p.mu.Lock()
	if !p.resolved {
		p.value = v
		p.resolved = true
	}
	v = p.value
	p.mu.Unlock()
	return v, nil
}

// MustValue is Value with a background context, panicking on error. It
// mirrors the ergonomics of Python's implicit resolution for code paths
// where resolution failure is a programming error.
func (p *Proxy[T]) MustValue() T {
	v, err := p.Value(context.Background())
	if err != nil {
		panic(err)
	}
	return v
}

// ResolveAsync begins resolving the target in a background goroutine so a
// later Value call finds it ready — the paper's resolve_async, used to
// overlap communication with computation. Calling ResolveAsync on a
// resolved or already-resolving proxy is a no-op.
//
// A failed async resolve is not discarded: every Value call waiting on the
// in-flight resolution observes the error. The proxy then returns to the
// unresolved state, so the next fresh Value call retries the factory.
func (p *Proxy[T]) ResolveAsync(ctx context.Context) {
	p.mu.Lock()
	if p.resolved || p.pending != nil {
		p.mu.Unlock()
		return
	}
	pending := &pendingResolve[T]{done: make(chan struct{})}
	p.pending = pending
	f := p.factory
	p.mu.Unlock()

	go func() {
		pending.value, pending.err = f.Resolve(ctx)
		p.finishAsync(pending)
		close(pending.done)
	}()
}

func (p *Proxy[T]) finishAsync(pending *pendingResolve[T]) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = nil
	if pending.err == nil && !p.resolved {
		p.value = pending.value
		p.resolved = true
	}
}

// Prime hands the proxy an externally materialized target, as if the
// factory had resolved to v. It is a no-op on an already-resolved proxy.
// Store.ResolveBatch uses it to fan a single batched get out to many
// proxies.
func (p *Proxy[T]) Prime(v T) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.resolved {
		return
	}
	p.value = v
	p.resolved = true
}

// Resolved reports whether the target is materialized locally.
func (p *Proxy[T]) Resolved() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resolved
}

// Release drops the cached target so the next Value resolves again through
// the factory. It has no effect on an unresolved proxy.
func (p *Proxy[T]) Release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	var zero T
	p.value = zero
	p.resolved = false
}

// Factory returns the proxy's factory.
func (p *Proxy[T]) Factory() Factory[T] { return p.factoryRef() }

func (p *Proxy[T]) factoryRef() Factory[T] {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.factory
}

// --- Serialization -------------------------------------------------------
//
// A proxy serializes as its factory descriptor only (paper §3.3: pickling a
// proxy includes only the factory, not the target). Factories that can
// travel between processes implement Describable; descriptor kinds map to
// rebuild functions in a process-global registry so the receiving side can
// reconstruct an equivalent factory without static knowledge of its type.

// Descriptor is the serialized form of a factory.
type Descriptor struct {
	// Kind names the rebuild function in the registry (e.g. "store").
	Kind string
	// Data is kind-specific encoded state.
	Data []byte
}

// Describable is implemented by factories that can be serialized.
type Describable interface {
	Describe() (Descriptor, error)
}

// AnyFactory resolves a target as an untyped value. Rebuild functions
// return AnyFactory because Go registries cannot hold generic functions;
// the typed Proxy[T] wraps the result and asserts to T.
type AnyFactory interface {
	ResolveAny(ctx context.Context) (any, error)
}

// Rebuilder reconstructs a factory from descriptor data.
type Rebuilder func(data []byte) (AnyFactory, error)

var (
	kindMu sync.RWMutex
	kinds  = make(map[string]Rebuilder)
)

// RegisterKind installs the rebuild function for a descriptor kind.
func RegisterKind(kind string, r Rebuilder) {
	kindMu.Lock()
	defer kindMu.Unlock()
	kinds[kind] = r
}

func rebuild(d Descriptor) (AnyFactory, error) {
	kindMu.RLock()
	r, ok := kinds[d.Kind]
	kindMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("proxy: no factory rebuilder for kind %q", d.Kind)
	}
	return r(d.Data)
}

// typedAdapter lifts an AnyFactory to a Factory[T] with a runtime type
// assertion at resolve time.
type typedAdapter[T any] struct{ af AnyFactory }

func (a typedAdapter[T]) Resolve(ctx context.Context) (T, error) {
	var zero T
	v, err := a.af.ResolveAny(ctx)
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("proxy: factory produced %T, want %T", v, zero)
	}
	return t, nil
}

func (a typedAdapter[T]) Describe() (Descriptor, error) {
	d, ok := a.af.(Describable)
	if !ok {
		return Descriptor{}, fmt.Errorf("proxy: underlying factory %T is not describable", a.af)
	}
	return d.Describe()
}

// MarshalBinary serializes the proxy as its factory descriptor. The cached
// target, if any, is deliberately excluded so proxies stay small on the
// wire and remain resolvable remotely.
func (p *Proxy[T]) MarshalBinary() ([]byte, error) {
	f := p.factoryRef()
	d, ok := f.(Describable)
	if !ok {
		return nil, fmt.Errorf("proxy: factory %T is not serializable", f)
	}
	desc, err := d.Describe()
	if err != nil {
		return nil, fmt.Errorf("proxy: describing factory: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(desc); err != nil {
		return nil, fmt.Errorf("proxy: encoding descriptor: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary reconstructs the proxy's factory from a descriptor. The
// proxy is left unresolved.
func (p *Proxy[T]) UnmarshalBinary(data []byte) error {
	var desc Descriptor
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&desc); err != nil {
		return fmt.Errorf("proxy: decoding descriptor: %w", err)
	}
	af, err := rebuild(desc)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.factory = typedAdapter[T]{af: af}
	p.resolved = false
	p.pending = nil
	var zero T
	p.value = zero
	return nil
}

// RegisterGob registers *Proxy[T] with encoding/gob so proxies of that type
// can travel inside interface-typed payloads (e.g. FaaS task arguments).
func RegisterGob[T any]() { gob.Register(&Proxy[T]{}) }

// NewFromAny returns a typed proxy over an untyped factory, asserting the
// resolved value to T at resolve time. Store uses it to build Proxy[T]
// instances from its serializable untyped factories.
func NewFromAny[T any](af AnyFactory) *Proxy[T] {
	return New[T](typedAdapter[T]{af: af})
}

// Underlying returns the untyped factory backing p when it was built with
// NewFromAny (or deserialized), letting callers such as Store.ResolveBatch
// inspect factory state without resolving. It reports false for proxies
// over plain typed factories.
func Underlying[T any](p *Proxy[T]) (AnyFactory, bool) {
	if ta, ok := p.factoryRef().(typedAdapter[T]); ok {
		return ta.af, true
	}
	return nil, false
}
