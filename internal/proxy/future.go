// Future-style helpers over groups of proxies. A Proxy[T] already behaves
// like a single-assignment future (ResolveAsync begins the computation,
// Value awaits it); the helpers here lift that to collections, which is
// what streaming consumers need: kick off a window of resolutions, then
// drain values in order as they land.
package proxy

import "context"

// Prefetch begins asynchronous resolution of every unresolved proxy. It
// returns immediately; pair with Value or AwaitAll to collect results.
// Nil entries are skipped.
func Prefetch[T any](ctx context.Context, proxies ...*Proxy[T]) {
	for _, p := range proxies {
		if p != nil {
			p.ResolveAsync(ctx)
		}
	}
}

// AwaitAll resolves every proxy (waiting for any in-flight async
// resolutions) and returns the targets positionally. The first error stops
// the wait; nil entries yield zero values.
func AwaitAll[T any](ctx context.Context, proxies ...*Proxy[T]) ([]T, error) {
	out := make([]T, len(proxies))
	for i, p := range proxies {
		if p == nil {
			continue
		}
		v, err := p.Value(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
