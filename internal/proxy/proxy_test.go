package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestValueResolvesLazily(t *testing.T) {
	var calls atomic.Int32
	p := New[int](Func[int](func(context.Context) (int, error) {
		calls.Add(1)
		return 42, nil
	}))
	if p.Resolved() {
		t.Fatal("proxy resolved before first access")
	}
	if calls.Load() != 0 {
		t.Fatal("factory called before first access")
	}
	v, err := p.Value(context.Background())
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if v != 42 {
		t.Fatalf("Value = %d, want 42", v)
	}
	if !p.Resolved() {
		t.Fatal("proxy not marked resolved")
	}
}

func TestValueCachesTarget(t *testing.T) {
	var calls atomic.Int32
	p := New[string](Func[string](func(context.Context) (string, error) {
		calls.Add(1)
		return "x", nil
	}))
	for i := 0; i < 5; i++ {
		if _, err := p.Value(context.Background()); err != nil {
			t.Fatalf("Value #%d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("factory called %d times, want 1", got)
	}
}

func TestValuePropagatesFactoryError(t *testing.T) {
	sentinel := errors.New("backend down")
	p := New[int](Func[int](func(context.Context) (int, error) {
		return 0, sentinel
	}))
	_, err := p.Value(context.Background())
	if !errors.Is(err, sentinel) {
		t.Fatalf("Value error = %v, want wrapped %v", err, sentinel)
	}
	if p.Resolved() {
		t.Fatal("proxy marked resolved after factory error")
	}
}

func TestFromValueIsResolved(t *testing.T) {
	p := FromValue([]int{1, 2, 3})
	if !p.Resolved() {
		t.Fatal("FromValue proxy not resolved")
	}
	v := p.MustValue()
	if len(v) != 3 || v[0] != 1 {
		t.Fatalf("MustValue = %v", v)
	}
}

func TestReleaseForcesReresolve(t *testing.T) {
	var calls atomic.Int32
	p := New[int](Func[int](func(context.Context) (int, error) {
		return int(calls.Add(1)), nil
	}))
	first := p.MustValue()
	p.Release()
	if p.Resolved() {
		t.Fatal("proxy still resolved after Release")
	}
	second := p.MustValue()
	if first != 1 || second != 2 {
		t.Fatalf("values = %d, %d; want 1, 2", first, second)
	}
}

func TestResolveAsyncOverlapsWork(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	p := New[int](Func[int](func(context.Context) (int, error) {
		close(started)
		<-block
		return 7, nil
	}))
	p.ResolveAsync(context.Background())
	<-started // factory is running in the background
	if p.Resolved() {
		t.Fatal("proxy resolved while factory still blocked")
	}
	close(block)
	if v := p.MustValue(); v != 7 {
		t.Fatalf("MustValue = %d, want 7", v)
	}
}

func TestResolveAsyncIdempotent(t *testing.T) {
	var calls atomic.Int32
	p := New[int](Func[int](func(context.Context) (int, error) {
		calls.Add(1)
		time.Sleep(5 * time.Millisecond)
		return 1, nil
	}))
	for i := 0; i < 10; i++ {
		p.ResolveAsync(context.Background())
	}
	p.MustValue()
	if got := calls.Load(); got != 1 {
		t.Fatalf("factory called %d times, want 1", got)
	}
}

func TestConcurrentValueSingleResolve(t *testing.T) {
	var calls atomic.Int32
	p := New[int](Func[int](func(context.Context) (int, error) {
		calls.Add(1)
		time.Sleep(2 * time.Millisecond)
		return 9, nil
	}))
	p.ResolveAsync(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := p.MustValue(); v != 9 {
				t.Errorf("MustValue = %d, want 9", v)
			}
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("factory called %d times, want 1", got)
	}
}

func TestMarshalRequiresDescribableFactory(t *testing.T) {
	p := New[int](Func[int](func(context.Context) (int, error) { return 0, nil }))
	if _, err := p.MarshalBinary(); err == nil {
		t.Fatal("MarshalBinary succeeded with non-describable factory")
	}
}

// testFactory is a describable factory used to exercise round-trips without
// the store layer.
type testFactory struct{ payload []byte }

func (f *testFactory) ResolveAny(context.Context) (any, error) {
	return append([]byte(nil), f.payload...), nil
}

func (f *testFactory) Describe() (Descriptor, error) {
	return Descriptor{Kind: "proxytest", Data: f.payload}, nil
}

func init() {
	RegisterKind("proxytest", func(data []byte) (AnyFactory, error) {
		return &testFactory{payload: data}, nil
	})
}

func TestProxySerializationRoundTrip(t *testing.T) {
	orig := NewFromAny[[]byte](&testFactory{payload: []byte("hello")})
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var restored Proxy[[]byte]
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if restored.Resolved() {
		t.Fatal("deserialized proxy already resolved")
	}
	v, err := restored.Value(context.Background())
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if string(v) != "hello" {
		t.Fatalf("Value = %q, want %q", v, "hello")
	}
}

func TestSerializedProxyExcludesTarget(t *testing.T) {
	big := make([]byte, 1<<20)
	p := NewFromAny[[]byte](&testFactory{payload: []byte("key-only")})
	// Resolve so a target is cached, then confirm marshaling stays small
	// (factory-only serialization, paper §3.3).
	_ = big
	p.MustValue()
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(blob) > 256 {
		t.Fatalf("serialized proxy is %d bytes; expected compact factory-only form", len(blob))
	}
}

func TestUnmarshalUnknownKind(t *testing.T) {
	orig := NewFromAny[[]byte](&testFactory{payload: []byte("x")})
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	// Corrupt the kind by re-registering under a different name is not
	// possible; instead decode into a proxy after unregistering is not
	// supported, so simulate with a bogus descriptor.
	var p Proxy[[]byte]
	bogus := Descriptor{Kind: "definitely-not-registered", Data: []byte("x")}
	data := encodeDescriptor(t, bogus)
	if err := p.UnmarshalBinary(data); err == nil {
		t.Fatal("UnmarshalBinary succeeded with unknown kind")
	}
	_ = blob
}

func encodeDescriptor(t *testing.T, d Descriptor) []byte {
	t.Helper()
	p := &Proxy[[]byte]{factory: descFactory{d}}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("encoding descriptor: %v", err)
	}
	return blob
}

type descFactory struct{ d Descriptor }

func (f descFactory) Resolve(context.Context) ([]byte, error) { return nil, nil }
func (f descFactory) Describe() (Descriptor, error)           { return f.d, nil }

func TestTypedAdapterTypeMismatch(t *testing.T) {
	p := NewFromAny[int](&testFactory{payload: []byte("not an int")})
	if _, err := p.Value(context.Background()); err == nil {
		t.Fatal("Value succeeded despite factory type mismatch")
	}
}

func TestPropertyRoundTripAnyPayload(t *testing.T) {
	f := func(payload []byte) bool {
		orig := NewFromAny[[]byte](&testFactory{payload: payload})
		blob, err := orig.MarshalBinary()
		if err != nil {
			return false
		}
		var restored Proxy[[]byte]
		if err := restored.UnmarshalBinary(blob); err != nil {
			return false
		}
		v, err := restored.Value(context.Background())
		if err != nil {
			return false
		}
		return string(v) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func ExampleProxy() {
	p := New[string](Func[string](func(context.Context) (string, error) {
		return "resolved just in time", nil
	}))
	fmt.Println(p.Resolved())
	fmt.Println(p.MustValue())
	fmt.Println(p.Resolved())
	// Output:
	// false
	// resolved just in time
	// true
}
