package proxy

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A failed async resolve must be observed by every Value call that was
// waiting on it — not silently discarded with a fresh factory invocation.
func TestResolveAsyncErrorObservedByWaiters(t *testing.T) {
	errBoom := errors.New("boom")
	var started sync.Once
	startedCh := make(chan struct{})
	block := make(chan struct{})
	var calls atomic.Int32
	p := New[int](Func[int](func(context.Context) (int, error) {
		calls.Add(1)
		started.Do(func() { close(startedCh) })
		<-block
		return 0, errBoom
	}))
	p.ResolveAsync(context.Background())
	<-startedCh

	// While the factory is blocked the pending marker is set, so every
	// Value call entered below must wait on the async result rather than
	// invoke the factory itself.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Value(context.Background())
		}(i)
	}
	// Give the waiters time to reach the pending wait, then release the
	// factory. A pathologically late waiter retries the (still-failing)
	// factory, which is the documented semantics; errBoom either way.
	time.Sleep(20 * time.Millisecond)
	close(block)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, errBoom) {
			t.Fatalf("waiter %d observed %v, want %v", i, err, errBoom)
		}
	}
	if p.Resolved() {
		t.Fatal("proxy marked resolved after failed async resolve")
	}
}

// After a failed async resolve has completed, the proxy is unresolved again
// and a fresh Value call retries the factory (the documented semantics).
func TestResolveAsyncFailureThenRetry(t *testing.T) {
	var calls atomic.Int32
	p := New[int](Func[int](func(context.Context) (int, error) {
		if calls.Add(1) == 1 {
			return 0, errors.New("transient")
		}
		return 5, nil
	}))
	p.ResolveAsync(context.Background())
	// Wait for the async attempt by observing its error through Value.
	if _, err := p.Value(context.Background()); err == nil {
		// The async goroutine may have finished before Value saw the
		// pending marker, in which case Value retried and succeeded; both
		// interleavings are legal. Force the retry case below regardless.
		if calls.Load() < 2 {
			t.Fatal("Value succeeded without any retry after failed async resolve")
		}
	}
	v, err := p.Value(context.Background())
	if err != nil {
		t.Fatalf("retry Value: %v", err)
	}
	if v != 5 {
		t.Fatalf("retry Value = %d, want 5", v)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("factory called %d times, want 2 (one failure, one retry)", got)
	}
}

func TestValueErrorMentionsResolving(t *testing.T) {
	p := New[int](Func[int](func(context.Context) (int, error) {
		return 0, errors.New("backend down")
	}))
	var started sync.Once
	startedCh := make(chan struct{})
	p2 := New[int](Func[int](func(context.Context) (int, error) {
		started.Do(func() { close(startedCh) })
		return 0, errors.New("backend down")
	}))
	p2.ResolveAsync(context.Background())
	<-startedCh
	for _, pp := range []*Proxy[int]{p, p2} {
		_, err := pp.Value(context.Background())
		if err == nil || !strings.Contains(err.Error(), "resolving target") {
			t.Fatalf("err = %v, want wrapped resolving-target error", err)
		}
	}
}

func TestPrime(t *testing.T) {
	var calls atomic.Int32
	p := New[int](Func[int](func(context.Context) (int, error) {
		calls.Add(1)
		return 1, nil
	}))
	p.Prime(42)
	if !p.Resolved() {
		t.Fatal("Prime did not resolve the proxy")
	}
	if v := p.MustValue(); v != 42 {
		t.Fatalf("MustValue = %d, want 42", v)
	}
	p.Prime(7) // no-op on resolved proxy
	if v := p.MustValue(); v != 42 {
		t.Fatalf("MustValue after second Prime = %d, want 42", v)
	}
	if calls.Load() != 0 {
		t.Fatal("factory invoked despite Prime")
	}
}

func TestValueRespectsContextWhilePending(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	p := New[int](Func[int](func(context.Context) (int, error) {
		close(started)
		<-block
		return 1, nil
	}))
	p.ResolveAsync(context.Background())
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Value(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Value with canceled ctx = %v, want context.Canceled", err)
	}
	close(block)
	if v := p.MustValue(); v != 1 {
		t.Fatalf("MustValue = %d, want 1", v)
	}
}
