package proxy

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReaderAdapter(t *testing.T) {
	p := New[*strings.Reader](Func[*strings.Reader](func(context.Context) (*strings.Reader, error) {
		return strings.NewReader("streamed through a proxy"), nil
	}))
	r := NewReader(context.Background(), p)
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(out) != "streamed through a proxy" {
		t.Fatalf("ReadAll = %q", out)
	}
}

func TestReaderAdapterPropagatesError(t *testing.T) {
	sentinel := errors.New("cannot resolve")
	p := New[*strings.Reader](Func[*strings.Reader](func(context.Context) (*strings.Reader, error) {
		return nil, sentinel
	}))
	r := NewReader(context.Background(), p)
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, sentinel) {
		t.Fatalf("Read error = %v", err)
	}
}

func TestWriterAdapter(t *testing.T) {
	var buf bytes.Buffer
	p := FromValue[*bytes.Buffer](&buf)
	w := NewWriter(context.Background(), p)
	if _, err := w.Write([]byte("written via proxy")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if buf.String() != "written via proxy" {
		t.Fatalf("buffer = %q", buf.String())
	}
}

func TestApply(t *testing.T) {
	p := FromValue([]int{3, 1, 2})
	sum, err := Apply(context.Background(), p, func(v []int) (int, error) {
		total := 0
		for _, x := range v {
			total += x
		}
		return total, nil
	})
	if err != nil || sum != 6 {
		t.Fatalf("Apply = %d, %v", sum, err)
	}
}

func TestMapIsLazy(t *testing.T) {
	resolved := false
	base := New[int](Func[int](func(context.Context) (int, error) {
		resolved = true
		return 21, nil
	}))
	doubled := Map(base, func(v int) (int, error) { return v * 2, nil })
	if resolved {
		t.Fatal("Map forced resolution eagerly")
	}
	if got := doubled.MustValue(); got != 42 {
		t.Fatalf("mapped value = %d", got)
	}
	if !resolved {
		t.Fatal("resolving the derived proxy did not resolve the base")
	}
}

func TestMapPropagatesBaseError(t *testing.T) {
	sentinel := errors.New("base failed")
	base := New[int](Func[int](func(context.Context) (int, error) { return 0, sentinel }))
	derived := Map(base, func(v int) (string, error) { return "x", nil })
	if _, err := derived.Value(context.Background()); !errors.Is(err, sentinel) {
		t.Fatalf("derived error = %v", err)
	}
}
