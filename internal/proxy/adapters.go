package proxy

import (
	"context"
	"io"
)

// Interface adapters: Go cannot forward arbitrary method calls the way
// Python's __getattr__ does, but proxies of values satisfying common stdlib
// interfaces can be wrapped so downstream code consumes them without
// knowing a proxy is involved — the closest Go analogue of the paper's
// "the consumer code is unaware that the resulting object is anything
// other than what it expected".

// Reader adapts a proxy of an io.Reader: the first Read resolves the
// target, later Reads forward directly.
type Reader[T io.Reader] struct {
	ctx context.Context
	p   *Proxy[T]
}

// NewReader wraps p as an io.Reader resolving with ctx.
func NewReader[T io.Reader](ctx context.Context, p *Proxy[T]) *Reader[T] {
	return &Reader[T]{ctx: ctx, p: p}
}

// Read implements io.Reader.
func (r *Reader[T]) Read(b []byte) (int, error) {
	target, err := r.p.Value(r.ctx)
	if err != nil {
		return 0, err
	}
	return target.Read(b)
}

// Writer adapts a proxy of an io.Writer.
type Writer[T io.Writer] struct {
	ctx context.Context
	p   *Proxy[T]
}

// NewWriter wraps p as an io.Writer resolving with ctx.
func NewWriter[T io.Writer](ctx context.Context, p *Proxy[T]) *Writer[T] {
	return &Writer[T]{ctx: ctx, p: p}
}

// Write implements io.Writer.
func (w *Writer[T]) Write(b []byte) (int, error) {
	target, err := w.p.Value(w.ctx)
	if err != nil {
		return 0, err
	}
	return target.Write(b)
}

// Apply calls fn with the resolved target — a one-shot transparent use that
// keeps resolution errors on the caller's error path.
func Apply[T, R any](ctx context.Context, p *Proxy[T], fn func(T) (R, error)) (R, error) {
	var zero R
	v, err := p.Value(ctx)
	if err != nil {
		return zero, err
	}
	return fn(v)
}

// Map returns a derived lazy proxy whose target is fn of p's target —
// composition without forcing resolution (the paper's nested-proxy pattern
// for partial resolution of large objects).
func Map[T, R any](p *Proxy[T], fn func(T) (R, error)) *Proxy[R] {
	return New[R](Func[R](func(ctx context.Context) (R, error) {
		var zero R
		v, err := p.Value(ctx)
		if err != nil {
			return zero, err
		}
		return fn(v)
	}))
}
