package proxy

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPrefetchAwaitAll(t *testing.T) {
	ctx := context.Background()
	var calls atomic.Int32
	mk := func(v int) *Proxy[int] {
		return New[int](Func[int](func(context.Context) (int, error) {
			calls.Add(1)
			time.Sleep(time.Millisecond)
			return v, nil
		}))
	}
	ps := []*Proxy[int]{mk(1), nil, mk(3)}
	Prefetch(ctx, ps...)
	vals, err := AwaitAll(ctx, ps...)
	if err != nil {
		t.Fatalf("AwaitAll: %v", err)
	}
	if vals[0] != 1 || vals[1] != 0 || vals[2] != 3 {
		t.Fatalf("AwaitAll = %v", vals)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("factory calls = %d, want 2", n)
	}
	// A second await serves from the cached targets.
	if _, err := AwaitAll(ctx, ps...); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("factory re-called after resolve: %d calls", n)
	}
}

func TestAwaitAllError(t *testing.T) {
	boom := errors.New("boom")
	ps := []*Proxy[int]{
		FromValue(7),
		New[int](Func[int](func(context.Context) (int, error) { return 0, boom })),
	}
	if _, err := AwaitAll(context.Background(), ps...); !errors.Is(err, boom) {
		t.Fatalf("AwaitAll error = %v, want %v", err, boom)
	}
}
