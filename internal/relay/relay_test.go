package relay

import (
	"context"
	"testing"
	"time"
)

func newRelay(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRegistrationAssignsUUID(t *testing.T) {
	s := newRelay(t)
	c, err := Dial(s.Addr(), "")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.UUID() == "" {
		t.Fatal("relay assigned empty UUID")
	}
}

func TestRegistrationKeepsRequestedUUID(t *testing.T) {
	s := newRelay(t)
	c, err := Dial(s.Addr(), "my-endpoint-id")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.UUID() != "my-endpoint-id" {
		t.Fatalf("UUID = %q", c.UUID())
	}
}

func TestDuplicateUUIDRejected(t *testing.T) {
	s := newRelay(t)
	a, err := Dial(s.Addr(), "dup-id")
	if err != nil {
		t.Fatalf("Dial a: %v", err)
	}
	defer a.Close()
	if _, err := Dial(s.Addr(), "dup-id"); err == nil {
		t.Fatal("second registration with same UUID succeeded")
	}
}

func TestForwardBetweenPeers(t *testing.T) {
	s := newRelay(t)
	a, err := Dial(s.Addr(), "peer-a")
	if err != nil {
		t.Fatalf("Dial a: %v", err)
	}
	defer a.Close()
	b, err := Dial(s.Addr(), "peer-b")
	if err != nil {
		t.Fatalf("Dial b: %v", err)
	}
	defer b.Close()

	if err := a.Forward("peer-b", []byte("session description")); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sig, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if sig.From != "peer-a" || string(sig.Payload) != "session description" {
		t.Fatalf("Recv = %+v", sig)
	}
	if s.Forwarded() != 1 {
		t.Fatalf("Forwarded = %d", s.Forwarded())
	}
}

func TestSenderIdentityStamped(t *testing.T) {
	// A malicious client cannot spoof From; the relay stamps it.
	s := newRelay(t)
	a, _ := Dial(s.Addr(), "honest-a")
	defer a.Close()
	b, _ := Dial(s.Addr(), "receiver-b")
	defer b.Close()

	// Forward always stamps the registered UUID server-side.
	a.Forward("receiver-b", []byte("x"))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sig, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if sig.From != "honest-a" {
		t.Fatalf("From = %q", sig.From)
	}
}

func TestForwardToUnknownPeer(t *testing.T) {
	s := newRelay(t)
	a, _ := Dial(s.Addr(), "lonely")
	defer a.Close()
	// Unknown peer: the relay replies with an error message, which the
	// client loop discards; Forward itself does not fail.
	if err := a.Forward("nobody", []byte("x")); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	// The lonely client must receive nothing.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); err == nil {
		t.Fatal("Recv returned a signal that should not exist")
	}
}

func TestUUIDFreedAfterDisconnect(t *testing.T) {
	s := newRelay(t)
	a, err := Dial(s.Addr(), "reusable")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	a.Close()
	// Registration is freed asynchronously when the server notices EOF.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := Dial(s.Addr(), "reusable")
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("UUID not freed after disconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
