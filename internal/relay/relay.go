// Package relay implements the publicly accessible relay (signaling) server
// that PS-endpoints use to establish peer connections (paper §4.2.2 and
// Figure 4). Endpoints register over a persistent TCP connection (standing
// in for the paper's WebSocket); the relay assigns UUIDs and forwards small
// session-description messages between peers. It never carries object data
// — only the O(KB) handshake traffic, which is why its hosting requirements
// are minimal.
package relay

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/msgnet"
)

// message is the relay wire format.
type message struct {
	// Kind is one of the kind* constants.
	Kind byte
	// From and To are endpoint UUIDs.
	From, To string
	// Payload is opaque signaling content (SDP/ICE-style descriptions).
	Payload []byte
}

const (
	kindRegister   byte = 1 // client -> relay: From holds requested UUID ("" = assign)
	kindRegistered byte = 2 // relay -> client: To holds assigned UUID
	kindForward    byte = 3 // client -> relay -> client
	kindError      byte = 4 // relay -> client: Payload holds message
)

func encodeMessage(m message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("relay: encoding message: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeMessage(data []byte) (message, error) {
	var m message
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return message{}, fmt.Errorf("relay: decoding message: %w", err)
	}
	return m, nil
}

// Server is the relay server.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	clients map[string]*serverConn

	closed    atomic.Bool
	wg        sync.WaitGroup
	forwarded atomic.Uint64
}

type serverConn struct {
	conn net.Conn
	w    *bufio.Writer
	wmu  sync.Mutex
}

func (sc *serverConn) send(m message) error {
	data, err := encodeMessage(m)
	if err != nil {
		return err
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if err := msgnet.WriteFrame(sc.w, data); err != nil {
		return err
	}
	return sc.w.Flush()
}

// NewServer starts a relay on addr.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("relay: listen: %w", err)
	}
	s := &Server{ln: ln, clients: make(map[string]*serverConn)}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the relay's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Forwarded returns the number of messages relayed between peers.
func (s *Server) Forwarded() uint64 { return s.forwarded.Load() }

// Close stops the relay; registered endpoints see their connections drop.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	for _, sc := range s.clients {
		sc.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	sc := &serverConn{conn: conn, w: bufio.NewWriter(conn)}

	// First frame must register.
	data, err := msgnet.ReadFrame(r)
	if err != nil {
		return
	}
	reg, err := decodeMessage(data)
	if err != nil || reg.Kind != kindRegister {
		sc.send(message{Kind: kindError, Payload: []byte("first message must register")})
		return
	}
	uuid := reg.From
	if uuid == "" {
		uuid = connector.NewID()
	}

	s.mu.Lock()
	if _, taken := s.clients[uuid]; taken {
		s.mu.Unlock()
		sc.send(message{Kind: kindError, Payload: []byte("uuid already registered")})
		return
	}
	s.clients[uuid] = sc
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.clients[uuid] == sc {
			delete(s.clients, uuid)
		}
		s.mu.Unlock()
	}()

	if err := sc.send(message{Kind: kindRegistered, To: uuid}); err != nil {
		return
	}

	for {
		data, err := msgnet.ReadFrame(r)
		if err != nil {
			return
		}
		m, err := decodeMessage(data)
		if err != nil || m.Kind != kindForward {
			continue
		}
		m.From = uuid // relay stamps the authentic sender
		s.mu.Lock()
		target, ok := s.clients[m.To]
		s.mu.Unlock()
		if !ok {
			sc.send(message{Kind: kindError, Payload: []byte("unknown peer " + m.To)})
			continue
		}
		s.forwarded.Add(1)
		target.send(m)
	}
}

// Client is an endpoint's connection to the relay.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	wmu  sync.Mutex

	uuid   string
	inbox  chan Signal
	closed atomic.Bool
}

// Signal is a forwarded peer message.
type Signal struct {
	// From is the sending endpoint's UUID.
	From string
	// Payload is the opaque signaling content.
	Payload []byte
}

// Dial connects and registers with the relay. An empty uuid asks the relay
// to assign one (the paper: "the relay server assigns a unique UUID if not
// already assigned").
func Dial(addr, uuid string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("relay: dialing %s: %w", addr, err)
	}
	c := &Client{
		conn:  conn,
		r:     bufio.NewReader(conn),
		w:     bufio.NewWriter(conn),
		inbox: make(chan Signal, 64),
	}
	if err := c.send(message{Kind: kindRegister, From: uuid}); err != nil {
		conn.Close()
		return nil, err
	}
	data, err := msgnet.ReadFrame(c.r)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("relay: reading registration reply: %w", err)
	}
	m, err := decodeMessage(data)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if m.Kind == kindError {
		conn.Close()
		return nil, fmt.Errorf("relay: registration rejected: %s", m.Payload)
	}
	if m.Kind != kindRegistered {
		conn.Close()
		return nil, fmt.Errorf("relay: unexpected registration reply kind %d", m.Kind)
	}
	c.uuid = m.To
	go c.recvLoop()
	return c, nil
}

// UUID returns the endpoint UUID assigned at registration.
func (c *Client) UUID() string { return c.uuid }

// Close drops the relay connection.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	return c.conn.Close()
}

func (c *Client) send(m message) error {
	data, err := encodeMessage(m)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := msgnet.WriteFrame(c.w, data); err != nil {
		return err
	}
	return c.w.Flush()
}

// Forward sends an opaque signaling payload to the peer with UUID to.
func (c *Client) Forward(to string, payload []byte) error {
	return c.send(message{Kind: kindForward, To: to, Payload: payload})
}

// Recv blocks for the next forwarded signal.
func (c *Client) Recv(ctx context.Context) (Signal, error) {
	select {
	case sig, ok := <-c.inbox:
		if !ok {
			return Signal{}, fmt.Errorf("relay: connection closed")
		}
		return sig, nil
	case <-ctx.Done():
		return Signal{}, ctx.Err()
	}
}

func (c *Client) recvLoop() {
	defer close(c.inbox)
	for {
		data, err := msgnet.ReadFrame(c.r)
		if err != nil {
			return
		}
		m, err := decodeMessage(data)
		if err != nil {
			continue
		}
		if m.Kind != kindForward {
			continue
		}
		select {
		case c.inbox <- Signal{From: m.From, Payload: m.Payload}:
		default: // drop under backpressure; signaling is retried by peers
		}
	}
}
