// Package telemetry is the dependency-free metrics core shared by all
// three planes (store data plane, kvstore metadata plane, faas/colmena
// task plane). It provides:
//
//   - Counter / Gauge: single atomic words. Gauges additionally track
//     their high-water mark (Peak), so "peak parked waiters" style
//     numbers survive into shutdown summaries.
//   - Histogram: fixed-bucket (log2 octaves × 8 linear sub-buckets,
//     ≲6% relative error) with lock-free Observe and mergeable
//     snapshots. Durations are observed in nanoseconds.
//   - Registry: a named get-or-create home for the above. Components
//     own private registries (kvstore.Server, kvstore.Client,
//     pstream.KVBroker, store.Store) so tests stay isolated; Default()
//     is the process-global registry used for cross-plane spans and
//     daemon-level introspection. Snapshots from several registries
//     Merge into one view.
//   - Spans (span.go): lightweight trace records whose IDs ride
//     pstream event attrs (ot.trace / ot.span) across plane hops.
//
// Everything here is stdlib-only and safe for concurrent use; Observe
// and Add on hot paths are one or two atomic operations.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that also remembers its
// high-water mark.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.bump(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	g.bump(g.v.Add(delta))
}

// Inc increases the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decreases the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Peak returns the highest value the gauge has reached.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

func (g *Gauge) bump(v int64) {
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Histogram bucket layout: values 0..7 map to exact buckets, larger
// values land in log2 octaves split into 8 linear sub-buckets. 64
// octaves × 8 covers the full non-negative int64 range in 512 buckets
// (4 KiB of counters) with ≤ ~6% relative quantile error.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // 8
	HistBuckets = 512
)

func bucketIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	sub := (u >> (uint(exp) - histSubBits)) & (histSub - 1)
	return histSub*(exp-histSubBits+1) + int(sub)
}

// bucketBounds returns the half-open [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i < histSub {
		return float64(i), float64(i + 1)
	}
	exp := uint(i/histSub - 1 + histSubBits)
	sub := uint64(i % histSub)
	width := float64(uint64(1) << (exp - histSubBits))
	lo = float64(uint64(1)<<exp) + float64(sub)*width
	return lo, lo + width
}

// Histogram is a fixed-bucket histogram of non-negative int64 samples
// (durations are recorded in nanoseconds). Observe is lock-free.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIdx(v)].Add(1)
	h.sum.Add(uint64(v))
	if h.count.Add(1) == 1 {
		// First writer seeds min; racing writers fix it up below.
		h.min.Store(v)
	}
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Since records the elapsed nanoseconds from t0 until now.
func (h *Histogram) Since(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// Snapshot returns a point-in-time copy. Concurrent Observes may be
// partially included; the snapshot is internally consistent enough for
// reporting (count/sum/buckets each read atomically).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram, mergeable with
// snapshots of other histograms (same fixed bucket layout).
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Min     int64
	Max     int64
	Buckets [HistBuckets]uint64
}

// Merge returns the combination of two snapshots.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Mean returns the arithmetic mean of the recorded samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the matching bucket, clamped to the observed
// min/max.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			lo, hi := bucketBounds(i)
			frac := (target - (cum - float64(c))) / float64(c)
			v := lo + frac*(hi-lo)
			return math.Min(math.Max(v, float64(s.Min)), float64(s.Max))
		}
	}
	return float64(s.Max)
}

// Registry is a named home for counters, gauges, histograms, and
// finished spans. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    spanRing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry. Cross-plane spans and
// anything that should show up in a daemon's /metrics endpoint without
// explicit wiring records here.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeSnapshot is the snapshotted state of one gauge.
type GaugeSnapshot struct {
	Value int64
	Peak  int64
}

// Snapshot is a point-in-time, mergeable copy of a registry.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]GaugeSnapshot
	Histograms map[string]HistSnapshot
	Spans      []SpanRecord
}

// Snapshot copies every metric and the recent-span ring.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]HistSnapshot),
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = GaugeSnapshot{Value: v.Value(), Peak: v.Peak()}
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	s.Spans = r.spans.all()
	return s
}

// Merge combines two snapshots: counters add, gauges add (peaks take
// the max), histograms merge bucket-wise, spans concatenate.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		g := out.Gauges[k]
		g.Value += v.Value
		if v.Peak > g.Peak {
			g.Peak = v.Peak
		}
		out.Gauges[k] = g
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		out.Histograms[k] = out.Histograms[k].Merge(v)
	}
	out.Spans = append(append([]SpanRecord{}, s.Spans...), o.Spans...)
	return out
}

// Trace returns the snapshot's span records for one trace ID, ordered
// by start time.
func (s Snapshot) Trace(id string) []SpanRecord {
	var out []SpanRecord
	for _, sp := range s.Spans {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Text renders the snapshot as sorted "name value" lines — the format
// served at /metrics and returned by the kvstore INFO command.
// Histograms expand to .count/.sum/.min/.max/.p50/.p95/.p99 lines;
// gauges emit their value plus a .peak line.
func (s Snapshot) Text() string {
	lines := make([]string, 0, len(s.Counters)+2*len(s.Gauges)+7*len(s.Histograms))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v.Value))
		lines = append(lines, fmt.Sprintf("%s.peak %d", k, v.Peak))
	}
	for k, v := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s.count %d", k, v.Count))
		lines = append(lines, fmt.Sprintf("%s.sum %d", k, v.Sum))
		lines = append(lines, fmt.Sprintf("%s.min %d", k, v.Min))
		lines = append(lines, fmt.Sprintf("%s.max %d", k, v.Max))
		lines = append(lines, fmt.Sprintf("%s.p50 %.0f", k, v.Quantile(0.50)))
		lines = append(lines, fmt.Sprintf("%s.p95 %.0f", k, v.Quantile(0.95)))
		lines = append(lines, fmt.Sprintf("%s.p99 %.0f", k, v.Quantile(0.99)))
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
