package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Trace attrs as they appear on the wire. A span's trace ID and span ID
// ride pstream event attrs under these names, so a hop on any plane can
// continue the trace the previous hop started. The "ot." prefix keeps
// them clear of pstream's reserved "ps." attr namespace and of
// application attrs.
const (
	// AttrTrace carries the 16-hex-digit trace ID.
	AttrTrace = "ot.trace"
	// AttrSpan carries the sending hop's span ID; the receiving hop
	// uses it as its parent.
	AttrSpan = "ot.span"
)

// NewTraceID returns a random 16-hex-digit identifier, used for both
// trace and span IDs.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID
		// is still a functioning (if colliding) identifier.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SpanRecord is a finished span as stored in a registry snapshot.
type SpanRecord struct {
	Trace  string
	ID     string
	Parent string
	Name   string
	Start  time.Time
	Dur    time.Duration
}

// Span is an in-flight timed operation belonging to a trace. Spans are
// cheap: two IDs and a timestamp. A nil *Span is inert — call sites can
// unconditionally defer sp.End().
type Span struct {
	Trace  string
	ID     string
	Parent string
	Name   string
	reg    *Registry
	start  time.Time
}

// StartSpan opens a span. An empty trace starts a new trace; parent may
// be empty for root spans. The finished span lands in this registry's
// snapshot (recent-span ring plus a "span.<name>" duration histogram).
func (r *Registry) StartSpan(trace, parent, name string) *Span {
	if trace == "" {
		trace = NewTraceID()
	}
	return &Span{
		Trace:  trace,
		ID:     NewTraceID(),
		Parent: parent,
		Name:   name,
		reg:    r,
		start:  time.Now(),
	}
}

// End records the span. Safe on a nil span; idempotent is not required
// (call once).
func (s *Span) End() {
	if s == nil || s.reg == nil {
		return
	}
	d := time.Since(s.start)
	s.reg.Histogram("span." + s.Name).Observe(int64(d))
	s.reg.spans.add(SpanRecord{
		Trace:  s.Trace,
		ID:     s.ID,
		Parent: s.Parent,
		Name:   s.Name,
		Start:  s.start,
		Dur:    d,
	})
	s.reg = nil
}

// Inject writes the span's trace context into an event-attr map (the
// ot.trace / ot.span wire format). The map must be non-nil.
func (s *Span) Inject(attrs map[string]string) {
	if s == nil {
		return
	}
	attrs[AttrTrace] = s.Trace
	attrs[AttrSpan] = s.ID
}

// spanRing keeps the most recent finished spans, bounded so a
// long-running daemon's registry stays O(1).
const spanRingCap = 4096

type spanRing struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	full bool
}

func (r *spanRing) add(s SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		r.buf = make([]SpanRecord, spanRingCap)
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % spanRingCap
	if r.next == 0 {
		r.full = true
	}
}

// all returns the ring contents oldest-first.
func (r *spanRing) all() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return nil
	}
	if !r.full {
		return append([]SpanRecord{}, r.buf[:r.next]...)
	}
	out := make([]SpanRecord, 0, spanRingCap)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
