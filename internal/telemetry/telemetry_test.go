package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Add(3)
	g.Add(4)
	g.Add(-6)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	if got := g.Peak(); got != 7 {
		t.Fatalf("gauge peak = %d, want 7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// Uniform 1..1000: quantiles should land within the bucket error
	// bound (~6% relative plus one bucket width).
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	check := func(q, want, tol float64) {
		got := s.Quantile(q)
		if got < want*(1-tol) || got > want*(1+tol) {
			t.Fatalf("q%.2f = %.1f, want %.1f ±%.0f%%", q, got, want, tol*100)
		}
	}
	check(0.50, 500, 0.10)
	check(0.95, 950, 0.10)
	check(0.99, 990, 0.10)
	if got := s.Quantile(1); got != 1000 {
		t.Fatalf("q1 = %.1f, want max", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %.1f, want min", got)
	}
	if mean := s.Mean(); mean < 480 || mean > 520 {
		t.Fatalf("mean = %.1f, want ~500.5", mean)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for i := 0; i < 8; i++ {
		if got := bucketIdx(int64(i)); got != i {
			t.Fatalf("bucketIdx(%d) = %d", i, got)
		}
	}
	h.Observe(-5) // clamps to 0
	s := h.Snapshot()
	if s.Min != 0 || s.Buckets[0] != 1 {
		t.Fatalf("negative sample not clamped: min=%d b0=%d", s.Min, s.Buckets[0])
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(2)
	b.Counter("x").Add(3)
	b.Counter("y").Inc()
	a.Gauge("g").Set(5)
	b.Gauge("g").Set(2)
	a.Histogram("h").Observe(10)
	b.Histogram("h").Observe(1000)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["x"] != 5 || m.Counters["y"] != 1 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	if g := m.Gauges["g"]; g.Value != 7 || g.Peak != 5 {
		t.Fatalf("merged gauge = %+v", g)
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Min != 10 || h.Max != 1000 {
		t.Fatalf("merged hist = count %d min %d max %d", h.Count, h.Min, h.Max)
	}
}

// TestConcurrentWritersDuringSnapshot hammers counters, gauges, and
// histograms from many goroutines while snapshots are taken — run with
// -race, this is the registry's data-race proof.
func TestConcurrentWritersDuringSnapshot(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot().Text()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("ops").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat").Observe(int64(i % 1024))
				r.Gauge("depth").Add(-1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-snapDone
	s := r.Snapshot()
	if s.Counters["ops"] != writers*perWriter {
		t.Fatalf("ops = %d, want %d", s.Counters["ops"], writers*perWriter)
	}
	if s.Histograms["lat"].Count != writers*perWriter {
		t.Fatalf("lat count = %d, want %d", s.Histograms["lat"].Count, writers*perWriter)
	}
	if s.Gauges["depth"].Value != 0 {
		t.Fatalf("depth = %d, want 0", s.Gauges["depth"].Value)
	}
}

func TestSpans(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("", "", "submit")
	attrs := map[string]string{}
	root.Inject(attrs)
	if attrs[AttrTrace] != root.Trace || attrs[AttrSpan] != root.ID {
		t.Fatalf("Inject wrote %v", attrs)
	}
	child := r.StartSpan(attrs[AttrTrace], attrs[AttrSpan], "publish")
	child.End()
	root.End()
	var nilSpan *Span
	nilSpan.End() // must not panic
	nilSpan.Inject(attrs)

	s := r.Snapshot()
	tr := s.Trace(root.Trace)
	if len(tr) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(tr))
	}
	if tr[0].Name != "submit" || tr[1].Name != "publish" {
		t.Fatalf("span order: %s, %s", tr[0].Name, tr[1].Name)
	}
	if tr[1].Parent != root.ID {
		t.Fatalf("child parent = %q, want %q", tr[1].Parent, root.ID)
	}
	if s.Histograms["span.submit"].Count != 1 {
		t.Fatal("span duration histogram missing")
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < spanRingCap+10; i++ {
		r.StartSpan("t", "", "s").End()
	}
	if n := len(r.Snapshot().Spans); n != spanRingCap {
		t.Fatalf("ring holds %d, want %d", n, spanRingCap)
	}
}

// TestHTTPEndpoint is the /metrics smoke test: known metric names must
// appear in the text dump, and expvar/pprof must answer.
func TestHTTPEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("kv.commands").Add(7)
	r.Histogram("kv.cmd.GET.ns").Observe(1500)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	body := get("/metrics")
	for _, want := range []string{"kv.commands 7", "kv.cmd.GET.ns.count 1", "kv.cmd.GET.ns.p95"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if !strings.Contains(get("/debug/vars"), "memstats") {
		t.Fatal("/debug/vars missing memstats")
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Fatal("/debug/pprof/ missing profile index")
	}
}
