package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the introspection mux served behind -metrics-addr:
//
//	/metrics     merged Text() dump of the given registries
//	/debug/vars  expvar JSON (memstats, cmdline)
//	/debug/pprof net/http/pprof profiles
//
// With no registries it serves Default().
func Handler(regs ...*Registry) http.Handler {
	if len(regs) == 0 {
		regs = []*Registry{Default()}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snap := regs[0].Snapshot()
		for _, r := range regs[1:] {
			snap = snap.Merge(r.Snapshot())
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(snap.Text()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (e.g.
// "127.0.0.1:9100", or ":0" for an ephemeral port) exposing the given
// registries. It returns once the listener is bound; requests are
// served on a background goroutine until Close.
func Serve(addr string, regs ...*Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(regs...)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
