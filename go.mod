module proxystore

go 1.24
