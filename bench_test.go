// Package main_test hosts the benchmark harness: one testing.B benchmark
// per table and figure in the paper's evaluation (each drives the
// corresponding runner in internal/experiments and reports its rows), plus
// component-level micro-benchmarks of the proxy/store core (§5's
// component-level numbers and the ablations listed in DESIGN.md).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package main_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"proxystore/internal/bench"
	"proxystore/internal/connector"
	"proxystore/internal/connectors/file"
	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/experiments"
	"proxystore/internal/kvstore"
	"proxystore/internal/proxy"
	"proxystore/internal/rudp"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

// benchConfig keeps the per-iteration cost of the figure benchmarks
// bounded; psbench runs the fuller sweeps.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 5000, Repeats: 1, MaxPayload: 1 << 20}
}

func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var report bench.Report
	for i := 0; i < b.N; i++ {
		report, err = runner(benchConfig())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	b.ReportMetric(float64(len(report.Rows)), "rows")
}

func BenchmarkFig5(b *testing.B)         { runExperimentBench(b, "fig5") }
func BenchmarkFig6(b *testing.B)         { runExperimentBench(b, "fig6") }
func BenchmarkFig7(b *testing.B)         { runExperimentBench(b, "fig7") }
func BenchmarkFig8(b *testing.B)         { runExperimentBench(b, "fig8") }
func BenchmarkFig9(b *testing.B)         { runExperimentBench(b, "fig9") }
func BenchmarkFig9Ablation(b *testing.B) { runExperimentBench(b, "fig9-ablation") }
func BenchmarkTable2(b *testing.B)       { runExperimentBench(b, "table2") }
func BenchmarkFig10(b *testing.B)        { runExperimentBench(b, "fig10") }
func BenchmarkFig11(b *testing.B)        { runExperimentBench(b, "fig11") }

// --- component-level micro-benchmarks ----------------------------------------

func newBenchStore(b *testing.B, name string, opts ...store.Option) *store.Store {
	b.Helper()
	s, err := store.New(name, local.New(name+"-conn"), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Unregister(name) })
	return s
}

// BenchmarkProxyCreate measures Store.proxy (put + factory + proxy mint).
func BenchmarkProxyCreate(b *testing.B) {
	s := newBenchStore(b, "bench-create", store.WithSerializer(serial.Raw()))
	ctx := context.Background()
	payload := make([]byte, 1<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.NewProxy(ctx, s, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyResolve measures first-touch resolution (cache disabled).
func BenchmarkProxyResolve(b *testing.B) {
	s := newBenchStore(b, "bench-resolve", store.WithSerializer(serial.Raw()), store.WithCacheSize(0))
	ctx := context.Background()
	payload := make([]byte, 1<<10)
	proxies := make([]*proxy.Proxy[[]byte], b.N)
	for i := range proxies {
		p, err := store.NewProxy(ctx, s, payload)
		if err != nil {
			b.Fatal(err)
		}
		proxies[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxies[i].Value(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyResolvedAccess measures access to an already-resolved proxy
// (the steady-state cost transparency adds).
func BenchmarkProxyResolvedAccess(b *testing.B) {
	p := proxy.FromValue(make([]byte, 1<<10))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Value(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxySerializeVsValue quantifies DESIGN.md ablation #1:
// factory-only proxy serialization against shipping the target by value.
func BenchmarkProxySerializeVsValue(b *testing.B) {
	s := newBenchStore(b, "bench-servs", store.WithSerializer(serial.Raw()))
	ctx := context.Background()
	for _, size := range []int{1 << 10, 1 << 20, 16 << 20} {
		payload := make([]byte, size)
		p, err := store.NewProxy(ctx, s, payload)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("proxy-%s", bench.FormatBytes(size)), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				blob, err := p.MarshalBinary()
				if err != nil {
					b.Fatal(err)
				}
				n = len(blob)
			}
			b.ReportMetric(float64(n), "wire-bytes")
		})
		b.Run(fmt.Sprintf("value-%s", bench.FormatBytes(size)), func(b *testing.B) {
			ser := serial.Default()
			var n int
			for i := 0; i < b.N; i++ {
				blob, err := ser.Encode(payload)
				if err != nil {
					b.Fatal(err)
				}
				n = len(blob)
			}
			b.ReportMetric(float64(n), "wire-bytes")
		})
	}
}

// BenchmarkStoreCache quantifies DESIGN.md ablation #2: repeated gets with
// and without the post-deserialization cache.
func BenchmarkStoreCache(b *testing.B) {
	ctx := context.Background()
	payload := make([]byte, 64<<10)
	for _, cached := range []bool{true, false} {
		name := fmt.Sprintf("bench-cache-%v", cached)
		size := 16
		if !cached {
			size = 0
		}
		s := newBenchStore(b, name, store.WithCacheSize(size), store.WithSerializer(serial.Raw()))
		key, err := s.PutObject(ctx, payload)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("cache=%v", cached), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.GetObject(ctx, key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// zeroReader yields n constant bytes without holding them in memory, so the
// streamed-put benchmarks measure only connector-side allocation.
type zeroReader struct{ n int }

func (r *zeroReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if n > r.n {
		n = r.n
	}
	for i := 0; i < n; i++ {
		p[i] = 0xA5
	}
	r.n -= n
	return n, nil
}

// BenchmarkLargeObjectDataPlane contrasts the blob and streamed data planes
// on a 64 MiB object through the file connector. The blob path allocates
// O(object) per get (os.ReadFile materializes the file); the streamed path
// allocates O(chunk) regardless of object size. Compare B/op between the
// sub-benchmarks, and the peak-rss-MiB metric for the high-water mark each
// path adds.
func BenchmarkLargeObjectDataPlane(b *testing.B) {
	const size = 64 << 20
	ctx := context.Background()
	conn, err := file.New(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}

	b.Run("blob", func(b *testing.B) {
		data := make([]byte, size)
		b.SetBytes(size)
		b.ReportAllocs()
		before := bench.SampleMem()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key, err := conn.Put(ctx, data)
			if err != nil {
				b.Fatal(err)
			}
			got, err := conn.Get(ctx, key)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != size {
				b.Fatalf("got %d bytes", len(got))
			}
			if err := conn.Evict(ctx, key); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		delta := bench.SampleMem().Delta(before)
		b.ReportMetric(float64(delta.PeakRSS)/(1<<20), "peak-rss-MiB")
	})

	b.Run("stream", func(b *testing.B) {
		b.SetBytes(size)
		b.ReportAllocs()
		before := bench.SampleMem()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key, err := conn.PutFrom(ctx, &zeroReader{n: size})
			if err != nil {
				b.Fatal(err)
			}
			if err := conn.GetTo(ctx, key, io.Discard); err != nil {
				b.Fatal(err)
			}
			if err := conn.Evict(ctx, key); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		delta := bench.SampleMem().Delta(before)
		b.ReportMetric(float64(delta.PeakRSS)/(1<<20), "peak-rss-MiB")
	})
}

// BenchmarkLargeObjectStore measures the same 64 MiB contrast one layer up:
// Store.PutObject/GetObject (gob through the io.Pipe streaming path) versus
// Store.PutReader/GetReader (raw streamed bytes), cache disabled so every
// get pays the transfer.
func BenchmarkLargeObjectStore(b *testing.B) {
	const size = 64 << 20
	ctx := context.Background()
	conn, err := file.New(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	s, err := store.New("bench-large", conn, store.WithCacheBytes(0))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Unregister("bench-large") })

	b.Run("object-gob-stream", func(b *testing.B) {
		payload := make([]byte, size)
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key, err := s.PutObject(ctx, payload)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.GetObject(ctx, key); err != nil {
				b.Fatal(err)
			}
			if err := s.Evict(ctx, key); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The binary codec is the typed middle ground: PutObject/GetObject
	// semantics (any value, registry-named codec in the factory) at
	// near-raw cost — the length-prefixed frame writes the payload's
	// backing bytes straight through and decodes into one exact
	// allocation, where gob materializes the whole encoded message on
	// both sides.
	sb, err := store.New("bench-large-binary", conn,
		store.WithCacheBytes(0), store.WithSerializer(serial.Binary()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Unregister("bench-large-binary") })

	b.Run("object-binary-stream", func(b *testing.B) {
		payload := make([]byte, size)
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key, err := sb.PutObject(ctx, payload)
			if err != nil {
				b.Fatal(err)
			}
			v, err := sb.GetObject(ctx, key)
			if err != nil {
				b.Fatal(err)
			}
			if got, ok := v.([]byte); !ok || len(got) != size {
				b.Fatalf("got %T, %d bytes", v, len(got))
			}
			if err := sb.Evict(ctx, key); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("reader-raw-stream", func(b *testing.B) {
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key, err := s.PutReader(ctx, &zeroReader{n: size})
			if err != nil {
				b.Fatal(err)
			}
			r, err := s.GetReader(ctx, key)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, r); err != nil {
				b.Fatal(err)
			}
			r.Close()
			if err := s.Evict(ctx, key); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProxyBatch contrasts per-proxy resolution against the batched
// data plane: NewProxyBatch + ResolveBatch resolves every target with one
// batched backend get per store (connector.BatchGetter) instead of one get
// per proxy. The redis variant shows the round-trip amortization (one
// MSET/MGET versus 2×batch SET/GET round trips); the local variant bounds
// the bookkeeping overhead when the connector has no native batch ops.
func BenchmarkProxyBatch(b *testing.B) {
	const batch = 64
	ctx := context.Background()
	values := make([][]byte, batch)
	for i := range values {
		values[i] = make([]byte, 4<<10)
	}

	srv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })

	conns := []struct {
		name string
		mk   func(suffix string) connector.Connector
	}{
		{"local", func(suffix string) connector.Connector { return local.New("bench-batch-" + suffix) }},
		{"redis", func(suffix string) connector.Connector { return redisc.New(srv.Addr()) }},
	}
	for _, cn := range conns {
		run := func(b *testing.B, name string, resolve func(*store.Store, []*proxy.Proxy[[]byte]) error) {
			sname := "bench-batch-" + cn.name + "-" + name
			s, err := store.New(sname, cn.mk(name),
				store.WithSerializer(serial.Raw()), store.WithCacheBytes(0))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { store.Unregister(sname) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				proxies, err := store.NewProxyBatch(ctx, s, values)
				if err != nil {
					b.Fatal(err)
				}
				if err := resolve(s, proxies); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(cn.name+"/individual", func(b *testing.B) {
			run(b, "ind", func(_ *store.Store, proxies []*proxy.Proxy[[]byte]) error {
				for _, p := range proxies {
					if _, err := p.Value(ctx); err != nil {
						return err
					}
				}
				return nil
			})
		})
		b.Run(cn.name+"/batched", func(b *testing.B) {
			run(b, "grp", func(_ *store.Store, proxies []*proxy.Proxy[[]byte]) error {
				return store.ResolveBatch(ctx, proxies)
			})
		})
	}
}

// BenchmarkSerializers compares the store's codecs.
func BenchmarkSerializers(b *testing.B) {
	payload := make([]byte, 256<<10)
	for _, ser := range []serial.Serializer{serial.Default(), serial.Raw()} {
		b.Run(ser.ID(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blob, err := ser.Encode(payload)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ser.Decode(blob); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(payload)))
		})
	}
}

// BenchmarkRUDPCongestion compares the peer channel's congestion
// controllers on a loopback pipe (ablation #5's transport component).
func BenchmarkRUDPCongestion(b *testing.B) {
	for _, mk := range []struct {
		name string
		cc   func() rudp.CongestionControl
	}{
		{"fixed", func() rudp.CongestionControl { return rudp.NewFixedWindow(0) }},
		{"bbr", func() rudp.CongestionControl { return rudp.NewBBRLike(0) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			pa, err := rudp.NewUDPPipe("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			pb, err := rudp.NewUDPPipe("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			pa.SetPeer(pb.LocalAddr())
			pb.SetPeer(pa.LocalAddr())
			chA := rudp.NewChannel(pa, mk.cc())
			chB := rudp.NewChannel(pb, mk.cc())
			defer chA.Close()
			defer chB.Close()

			ctx := context.Background()
			msg := make([]byte, 256<<10)
			b.SetBytes(int64(len(msg)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := chA.Send(ctx, msg); err != nil {
					b.Fatal(err)
				}
				if _, err := chB.Recv(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
