// Command ps-relay runs the publicly accessible relay (signaling) server
// that PS-endpoints use to establish peer connections (paper §4.2.2).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"proxystore/internal/relay"
	"proxystore/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "listen address")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty: off)")
	flag.Parse()

	srv, err := relay.NewServer(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ps-relay:", err)
		os.Exit(1)
	}
	fmt.Printf("ps-relay listening on %s\n", srv.Addr())

	if *metricsAddr != "" {
		ms, err := telemetry.Serve(*metricsAddr, telemetry.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ps-relay: metrics:", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("ps-relay metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("ps-relay shutting down (%d messages forwarded)\n", srv.Forwarded())
	srv.Close()
}
