// Command ps-benchdiff compares a fresh ps-streambench JSON report against
// a committed baseline and exits non-zero on regression, so CI can hold the
// metadata-plane cost envelope over time.
//
// Rows are matched per profile name ("event", "group-poll", ...). A row
// present in the baseline but absent from the new report is itself a
// failure — a silently dropped benchmark looks exactly like a fixed one.
//
// Two metrics gate:
//
//   - kv_cmds_per_item — the deterministic cost signal (commands issued per
//     streamed item). Regression threshold is multiplicative: -tolerance
//     (default 10%) over baseline.
//   - p95_ms — the delivery-latency signal. CI boxes are noisy, so the gate
//     is both multiplicative (-lat-tolerance, default 50%) and additive
//     (-lat-floor-ms, default 3 ms): a row only fails when the new p95
//     exceeds base×(1+tol)+floor. Sub-millisecond jitter on a 0.3 ms
//     baseline never trips it; a polling-regression jump from 2 ms to
//     20 ms does.
//
// Throughput (items/s, MB/s) is reported but never gated: wall-clock rates
// on shared runners regress for reasons that have nothing to do with the
// code under test.
//
// Usage:
//
//	ps-benchdiff -base bench/BENCH_pstream.json -new BENCH_pstream.json
//	             [-tolerance 0.10] [-lat-tolerance 0.50] [-lat-floor-ms 3]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// row mirrors the ps-streambench profile fields this tool gates on; extra
// fields in the report are ignored.
type row struct {
	Name          string   `json:"name"`
	ItemsPerSec   float64  `json:"items_per_sec"`
	KVCmdsPerItem *float64 `json:"kv_cmds_per_item"`
	// Dials and RoundTrips are the broker client's transport totals.
	// Reported as warn-only deltas, never gated: connection and flush
	// counts shift legitimately with pool sizing and pipelining windows,
	// but a silent 10× jump is worth a line in the log.
	Dials      *uint64  `json:"dials"`
	RoundTrips *uint64  `json:"round_trips"`
	P95Ms      *float64 `json:"p95_ms"`
}

// benchReport mirrors the ps-streambench -json document.
type benchReport struct {
	Profile  string `json:"profile"`
	Profiles []row  `json:"profiles"`
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	basePath := flag.String("base", "bench/BENCH_pstream.json", "committed baseline report")
	newPath := flag.String("new", "BENCH_pstream.json", "freshly generated report")
	tol := flag.Float64("tolerance", 0.10, "allowed kv_cmds_per_item growth over baseline (fraction)")
	latTol := flag.Float64("lat-tolerance", 0.50, "allowed p95 latency growth over baseline (fraction)")
	latFloor := flag.Float64("lat-floor-ms", 3, "additive p95 noise floor in ms (absorbs CI jitter on sub-ms baselines)")
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loading baseline: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loading new report: %v\n", err)
		os.Exit(2)
	}
	if base.Profile != fresh.Profile {
		fmt.Fprintf(os.Stderr, "profile mismatch: baseline is %q, new report is %q\n", base.Profile, fresh.Profile)
		os.Exit(2)
	}

	byName := make(map[string]row, len(fresh.Profiles))
	for _, p := range fresh.Profiles {
		byName[p.Name] = p
	}

	pct := func(now, was float64) string {
		if was == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.0f%%", (now/was-1)*100)
	}

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("  FAIL: "+format+"\n", args...)
	}
	fmt.Printf("%s vs baseline %s (profile %q)\n", *newPath, *basePath, base.Profile)
	for _, b := range base.Profiles {
		n, ok := byName[b.Name]
		if !ok {
			failed = true
			fmt.Printf("%-11s missing from new report\n", b.Name)
			continue
		}
		fmt.Printf("%-11s items/s %s", b.Name, pct(n.ItemsPerSec, b.ItemsPerSec))
		if b.KVCmdsPerItem != nil && n.KVCmdsPerItem != nil {
			fmt.Printf("  kv-cmds/it %.1f→%.1f (%s)", *b.KVCmdsPerItem, *n.KVCmdsPerItem, pct(*n.KVCmdsPerItem, *b.KVCmdsPerItem))
		}
		if b.P95Ms != nil && n.P95Ms != nil {
			fmt.Printf("  p95 %.2f→%.2fms", *b.P95Ms, *n.P95Ms)
		}
		fmt.Println()
		if b.Dials != nil && n.Dials != nil && *n.Dials != *b.Dials {
			fmt.Printf("  warn: %s dials %d→%d (%s) — informational, not gated\n",
				b.Name, *b.Dials, *n.Dials, pct(float64(*n.Dials), float64(*b.Dials)))
		}
		if b.RoundTrips != nil && n.RoundTrips != nil && *n.RoundTrips != *b.RoundTrips {
			fmt.Printf("  warn: %s round trips %d→%d (%s) — informational, not gated\n",
				b.Name, *b.RoundTrips, *n.RoundTrips, pct(float64(*n.RoundTrips), float64(*b.RoundTrips)))
		}
		if b.KVCmdsPerItem != nil && n.KVCmdsPerItem != nil &&
			*n.KVCmdsPerItem > *b.KVCmdsPerItem*(1+*tol) {
			fail("%s kv_cmds_per_item %.2f exceeds baseline %.2f by more than %.0f%%",
				b.Name, *n.KVCmdsPerItem, *b.KVCmdsPerItem, *tol*100)
		}
		if b.P95Ms != nil && n.P95Ms != nil &&
			*n.P95Ms > *b.P95Ms*(1+*latTol)+*latFloor {
			fail("%s p95 %.2fms exceeds baseline %.2fms beyond %.0f%% + %.1fms noise floor",
				b.Name, *n.P95Ms, *b.P95Ms, *latTol*100, *latFloor)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: metadata-plane cost regressed against the committed baseline")
		os.Exit(1)
	}
	fmt.Println("benchdiff: within tolerance")
}
