// Command psbench regenerates the paper's tables and figures.
//
// Usage:
//
//	psbench [-scale N] [-repeats N] [-max-payload BYTES] <experiment>|all
//
// Experiments: fig5 fig6 fig7 fig8 fig9 fig9-ablation table2 fig10 fig11.
// Reports print as aligned tables matching the rows/series of the paper's
// evaluation (§5); EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"proxystore/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 500, "netsim time compression factor")
	repeats := flag.Int("repeats", 3, "measurements per data point")
	maxPayload := flag.Int("max-payload", 10<<20, "payload sweep cap in bytes")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: psbench [flags] <experiment>|all\nexperiments: %v\nflags:\n", experiments.Names())
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{Scale: *scale, Repeats: *repeats, MaxPayload: *maxPayload}

	ids := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		runner, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		report, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		report.Print(os.Stdout)
		fmt.Printf("(%s completed in %s)\n", id, time.Since(start).Round(time.Millisecond))
	}
}
