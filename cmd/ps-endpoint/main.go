// Command ps-endpoint runs a PS-endpoint: an in-memory object store that
// serves local clients and peers with remote endpoints through a relay
// server (paper §4.2.2). It is the Go analogue of the paper's
// proxystore-endpoint CLI.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"proxystore/internal/endpoint"
	"proxystore/internal/telemetry"
)

func main() {
	apiAddr := flag.String("addr", "127.0.0.1:0", "client API listen address")
	relayAddr := flag.String("relay", "127.0.0.1:8765", "relay server address")
	uuid := flag.String("uuid", "", "endpoint UUID (empty: relay assigns one)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty: off)")
	flag.Parse()

	ep, err := endpoint.Start(*apiAddr, *relayAddr, endpoint.Options{UUID: *uuid})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ps-endpoint:", err)
		os.Exit(1)
	}
	fmt.Printf("ps-endpoint %s serving on %s (relay %s)\n", ep.UUID(), ep.Addr(), *relayAddr)

	if *metricsAddr != "" {
		ms, err := telemetry.Serve(*metricsAddr, telemetry.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ps-endpoint: metrics:", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("ps-endpoint metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("ps-endpoint shutting down (%d requests served, %d objects held)\n",
		ep.Requests(), ep.Len())
	ep.Close()
}
