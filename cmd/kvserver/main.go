// Command kvserver runs the mini Redis: a RESP2 key-value server usable by
// the RedisConnector (or any Redis client speaking RESP2 GET/SET/DEL).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"proxystore/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6379", "listen address")
	aof := flag.String("persist", "", "append-only persistence file (empty: memory only)")
	flag.Parse()

	var opts []kvstore.ServerOption
	if *aof != "" {
		opts = append(opts, kvstore.WithPersistence(*aof))
	}
	srv, err := kvstore.NewServer(*addr, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("kvserver listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("kvserver shutting down (%d commands served)\n", srv.Commands())
	srv.Close()
}
