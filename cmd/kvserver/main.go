// Command kvserver runs the mini Redis: a RESP2 key-value server usable by
// the RedisConnector (or any Redis client speaking RESP2 GET/SET/DEL).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"proxystore/internal/kvstore"
	"proxystore/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6379", "listen address")
	aof := flag.String("persist", "", "append-only persistence file (empty: memory only)")
	replicaOf := flag.String("replica-of", "", "follow the primary at this address as a read-only replica (promoted on primary death or PROMOTE)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty: off)")
	flag.Parse()

	var opts []kvstore.ServerOption
	if *aof != "" {
		opts = append(opts, kvstore.WithPersistence(*aof))
	}
	if *replicaOf != "" {
		opts = append(opts, kvstore.WithReplicaOf(*replicaOf))
	}
	srv, err := kvstore.NewServer(*addr, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	role := "primary"
	if *replicaOf != "" {
		role = "replica of " + *replicaOf
	}
	fmt.Printf("kvserver listening on %s (%s)\n", srv.Addr(), role)

	if *metricsAddr != "" {
		ms, err := telemetry.Serve(*metricsAddr, srv.Telemetry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvserver: metrics:", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("kvserver metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	// Dump the final INFO snapshot before Close so the lifetime totals —
	// per-command counts and latencies, bytes moved, peak waiters — land
	// in the log even without a metrics endpoint.
	fmt.Printf("kvserver shutting down\n%s", srv.InfoText())
	os.Stdout.Sync()
	srv.Close()
}
