// Command ps-streambench compares moving a stream of objects from one
// producer to N consumers several ways:
//
//	inline   — eager blob fan-out: every payload travels through the broker
//	           itself, once per consumer (the classic message-queue baseline)
//	eager    — proxy streaming, window 1: events cross the broker, every
//	           consumer resolves each payload with its own blob get
//	batched  — proxy streaming, prefetch window: pending events drain
//	           together and payloads arrive in batched store gets
//	batchpub — batched on both halves: the producer's SendBatch reserves a
//	           whole offset range with one broker operation (KVBroker: one
//	           INCRBY + one MSET instead of 2 round trips per event)
//	group    — with -groups: consumers form one consumer group, so the
//	           stream is a work queue where each item is claimed by exactly
//	           one member (total work = items, not items × consumers)
//
// It reports items/sec plus bytes over the broker vs bytes over the store
// — and, for the kv broker, server commands per item, making both
// ProxyStream trades visible: the metadata plane stays O(KB) per item
// while the data plane carries the bulk, and batching collapses the
// publish path's round trips to O(1) per batch.
//
// Usage:
//
//	ps-streambench [-items N] [-size BYTES] [-consumers N] [-window N]
//	               [-batch N] [-broker mem|kv] [-groups] [-wan]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
	"proxystore/internal/pstream"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

func main() {
	items := flag.Int("items", 256, "objects to stream")
	size := flag.Int("size", 256<<10, "object size in bytes")
	consumers := flag.Int("consumers", 2, "consumer count (group members with -groups)")
	window := flag.Int("window", 16, "batched-mode prefetch window")
	batch := flag.Int("batch", 32, "batchpub/group-mode SendBatch size")
	brokerKind := flag.String("broker", "kv", "broker: mem | kv")
	groups := flag.Bool("groups", false, "add the consumer-group work-queue profile")
	wan := flag.Bool("wan", false, "model WAN delays on the redis data plane (kv broker only)")
	flag.Parse()

	var srv *kvstore.Server
	var mkBroker func() pstream.Broker
	var mkStore func(run string) *store.Store
	switch *brokerKind {
	case "mem":
		mkBroker = func() pstream.Broker { return pstream.NewMem() }
		mkStore = func(run string) *store.Store {
			st, err := store.New("sb-"+run, local.New("sb-conn-"+run), store.WithCacheBytes(0))
			if err != nil {
				log.Fatal(err)
			}
			return st
		}
	case "kv":
		var err error
		srv, err = kvstore.NewServer("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		var opts []redisc.Option
		if *wan {
			redisc.SetNetwork(netsim.Testbed(5000))
			opts = append(opts, redisc.WithSites(netsim.SiteEdge, netsim.SiteCloud))
		}
		mkBroker = func() pstream.Broker { return pstream.NewKV(srv.Addr()) }
		mkStore = func(run string) *store.Store {
			st, err := store.New("sb-"+run, redisc.New(srv.Addr(), opts...),
				store.WithSerializer(serial.Raw()), store.WithCacheBytes(0))
			if err != nil {
				log.Fatal(err)
			}
			return st
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown broker %q\n", *brokerKind)
		os.Exit(2)
	}

	fmt.Printf("streaming %d × %d KiB to %d consumers over %q broker\n\n",
		*items, *size>>10, *consumers, *brokerKind)
	fmt.Printf("%-8s %10s %10s %14s %14s %10s\n",
		"mode", "items/s", "MB/s", "broker-bytes", "store-bytes", "kv-cmds/it")

	run := func(mode string, f func(cb *pstream.CountingBroker, st *store.Store) error) {
		st := mkStore(mode)
		defer st.Close()
		cb := pstream.NewCounting(mkBroker())
		defer cb.Close()
		var cmds0 uint64
		if srv != nil {
			cmds0 = srv.Commands()
		}
		start := time.Now()
		if err := f(cb, st); err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		elapsed := time.Since(start)
		m := st.Metrics()
		rate := float64(*items) / elapsed.Seconds()
		mbs := float64(*items**size) / 1e6 / elapsed.Seconds()
		perItem := "-"
		if srv != nil {
			perItem = fmt.Sprintf("%.1f", float64(srv.Commands()-cmds0)/float64(*items))
		}
		fmt.Printf("%-8s %10.0f %10.1f %14d %14d %10s\n",
			mode, rate, mbs, cb.BytesPublished()+cb.BytesDelivered(), m.BytesPut+m.BytesGot, perItem)
	}

	payload := make([]byte, *size)
	for i := range payload {
		payload[i] = byte(i * 17)
	}

	run("inline", func(cb *pstream.CountingBroker, _ *store.Store) error {
		return inlineFanOut(cb, payload, *items, *consumers)
	})
	run("eager", func(cb *pstream.CountingBroker, st *store.Store) error {
		return proxyStream(cb, st, payload, *items, *consumers, 1, 0, false)
	})
	run("batched", func(cb *pstream.CountingBroker, st *store.Store) error {
		return proxyStream(cb, st, payload, *items, *consumers, *window, 0, false)
	})
	run("batchpub", func(cb *pstream.CountingBroker, st *store.Store) error {
		return proxyStream(cb, st, payload, *items, *consumers, *window, *batch, false)
	})
	if *groups {
		run("group", func(cb *pstream.CountingBroker, st *store.Store) error {
			return proxyStream(cb, st, payload, *items, *consumers, *window, *batch, true)
		})
	}
}

// inlineFanOut pushes payloads through the broker itself: the baseline
// where the metadata plane is the data plane.
func inlineFanOut(b pstream.Broker, payload []byte, items, consumers int) error {
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, consumers+1)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sub, err := b.Subscribe(ctx, "inline", fmt.Sprintf("c%d", c))
			if err != nil {
				errs <- err
				return
			}
			defer sub.Close()
			for i := 0; i < items; i++ {
				ev, err := sub.Next(ctx)
				if err != nil {
					errs <- err
					return
				}
				if len(ev.ProxyData) != len(payload) {
					errs <- fmt.Errorf("consumer %d: truncated inline payload", c)
					return
				}
				if _, err := sub.Ack(ctx, ev); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			ev := pstream.Event{Producer: "p", Seq: uint64(i + 1), ProxyData: payload}
			if err := b.Publish(ctx, "inline", ev); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	return <-errs
}

// proxyStream is the ProxyStream pattern: payloads through the store,
// events through the broker, consumers resolving with the given window.
// sendBatch > 0 publishes in SendBatch chunks of that size; group makes
// the consumers members of one consumer group (each item claimed by
// exactly one member) instead of independent fan-out readers.
func proxyStream(b pstream.Broker, st *store.Store, payload []byte, items, consumers, window, sendBatch int, group bool) error {
	ctx := context.Background()
	topic := "px-" + connector.NewID()[:8]
	evictAfter := consumers
	if group {
		evictAfter = 1 // the whole group counts as one consumer
	}
	var wg sync.WaitGroup
	errs := make(chan error, consumers+1)
	var consumed sync.Map
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			opts := []pstream.ConsumerOption{pstream.WithWindow(window)}
			if group {
				opts = append(opts, pstream.WithGroup("pool"))
			}
			cons, err := pstream.NewConsumer[[]byte](ctx, b, topic, fmt.Sprintf("c%d", c), opts...)
			if err != nil {
				errs <- err
				return
			}
			defer cons.Close()
			n := 0
			for {
				v, err := cons.NextValue(ctx)
				if errors.Is(err, pstream.ErrEnd) {
					consumed.Store(c, n)
					return
				}
				if err != nil {
					errs <- err
					return
				}
				if len(v) != len(payload) {
					errs <- fmt.Errorf("consumer %d: truncated payload", c)
					return
				}
				n++
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		prod := pstream.NewProducer[[]byte](st, b, topic, pstream.WithEvictOnAck(evictAfter))
		if sendBatch > 0 {
			for sent := 0; sent < items; sent += sendBatch {
				n := sendBatch
				if items-sent < n {
					n = items - sent
				}
				batch := make([][]byte, n)
				for i := range batch {
					batch[i] = payload
				}
				if err := prod.SendBatch(ctx, batch); err != nil {
					errs <- err
					return
				}
			}
		} else {
			for i := 0; i < items; i++ {
				if err := prod.Send(ctx, payload, nil); err != nil {
					errs <- err
					return
				}
			}
		}
		if err := prod.Close(ctx); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	total := 0
	consumed.Range(func(_, v any) bool { total += v.(int); return true })
	want := items * consumers
	if group {
		want = items
	}
	if total != want {
		return fmt.Errorf("consumed %d items in total, want %d", total, want)
	}
	return nil
}
