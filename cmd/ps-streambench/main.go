// Command ps-streambench measures the pstream planes under three
// profiles, selected with -profile:
//
//	stream (default) — one producer fanning a stream of objects out to N
//	consumers, across the delivery modes below
//	tasks            — the task plane: a stream-backed faas executor
//	                   submits paced tasks to an endpoint worker pool
//	                   (consumer-group claims over the broker), reporting
//	                   submit→execute→result latency per task and
//	                   kv-cmds/task; on the kv broker the same workload
//	                   repeats over the polling fallback (tasks-poll)
//	multi            — the stream profile's batched mode over a
//	                   multi-connector store: small payloads route to an
//	                   in-memory child, large ones to a file child, the
//	                   broker carrying the same O(100 B) events either way
//	pipeline         — the client-transport profile (kv broker only): the
//	                   same streaming workloads with the data plane moved
//	                   off the kv server (local store), so the kv-cmds,
//	                   round-trip and connection columns isolate the
//	                   broker's own transport. pipe-fanout measures
//	                   cmds-per-round-trip (>1 ⇔ the pipelined ack/publish
//	                   paths amortize flushes); pipe-group parks ≥16 group
//	                   members and measures conns-per-consumer (≤1 ⇔ the
//	                   wait multiplexer shares one blocking-wait
//	                   connection instead of pinning one per member)
//	churn            — the fleet-lifecycle profile (kv broker only):
//	                   -gens generations of ephemeral executors churn
//	                   against one long-lived endpoint over a
//	                   heartbeat-enabled broker. Even generations await
//	                   every result and Close cleanly; odd generations
//	                   crash (Kill) with results still in flight, stranding
//	                   them on the shared per-endpoint result topic
//	                   addressed to clients that no longer exist. The
//	                   endpoint's heartbeat-driven sweeps must reclaim
//	                   those orphans: the profile reports the server's
//	                   settled key count and orphans swept alongside the
//	                   usual submit→result latency columns
//	replay           — trace-driven load (kv broker only): -trace replays a
//	                   wire trace recorded with -record against a fresh
//	                   in-process kv server. -speed 1 is the deterministic
//	                   mode (ops issue in recorded dependency order; service
//	                   times should match the recording); -speed N > 1
//	                   compresses the recorded schedule N× into a load
//	                   generator. The row reports replayed kv-cmds/item
//	                   (which must land within ±10% of the recorded run
//	                   under -strict) and replayed op latencies; the JSON
//	                   report takes the recorded run's profile and row name
//	                   so ps-benchdiff can diff replay against live.
//	shard            — the sharded-tier profile: -topics concurrent
//	                   producers publish metadata-only events against a
//	                   durable in-process kv tier, once with 1 shard and
//	                   once with -shards, and the rows' aggregate publish
//	                   rates show what consistent-hash sharding buys when
//	                   every publish must reach a shard's commit log
//	                   before it is acknowledged. The commit device is
//	                   modeled per shard (-commit, netsim style — real
//	                   appends, modeled flush time) since co-located
//	                   shards sharing one local disk would serialize on
//	                   its journal and hide the scaling; -fsync swaps in
//	                   real fsyncs for multi-disk hardware
//
// -kv pstream.NewKV's address — a single server or a cluster spec
// ("host:port|replica,host:port" — shards by ",", replicas by "|") — runs
// the kv-broker profiles against an external tier instead of an
// in-process server, with the data plane on a local store. This is how CI
// drives a publish/consume workload through a primary→replica failover:
// point -kv at a primary|replica pair and kill the primary mid-run.
//
// The stream profile's delivery modes:
//
//	inline     — eager blob fan-out: every payload travels through the broker
//	             itself, once per consumer (the classic message-queue baseline)
//	eager      — proxy streaming, window 1: events cross the broker, every
//	             consumer resolves each payload with its own blob get
//	batched    — proxy streaming, prefetch window: pending events drain
//	             together and payloads arrive in batched store gets
//	batchpub   — batched on both halves: the producer's SendBatch reserves a
//	             whole offset range with one broker operation (KVBroker: one
//	             INCRBY + one MSET instead of 2 round trips per event)
//	event      — the delivery-latency profile: paced single-event sends
//	             (-gap apart), consumers parked in blocking waits between
//	             arrivals — push delivery's home turf. Runs twice on the kv
//	             broker: push (server-side WAITGET) and poll (the
//	             capped-backoff fallback), on the same server, so the
//	             kv-cmds/item and latency columns are directly comparable.
//	group      — with -groups: consumers form one consumer group, so the
//	             stream is a work queue where each item is claimed by exactly
//	             one member (total work = items, not items × consumers).
//	             Paced like event; also run push vs poll on the kv broker.
//
// It reports items/sec, bytes over the broker vs bytes over the store, kv
// server commands per item, and p50/p95/p99 publish→deliver latency —
// making all three ProxyStream trades visible: the metadata plane stays
// O(KB) per item while the data plane carries the bulk, batching collapses
// the publish path's round trips, and push delivery collapses the delivery
// path's polling (strictly fewer kv commands per item, sub-millisecond
// wakes regardless of backoff state).
//
// -json writes the full result table as machine-readable JSON
// (BENCH_pstream.json in CI) so runs can be tracked over time. -strict
// exits non-zero if push delivery fails to beat the polling fallback on
// kv-cmds/item in the event and group profiles; in the pipeline profile,
// if pipelining fails to amortize round trips (cmds/rtt ≤ 1.02) or parked
// group members fail to share the wait connection (conns/consumer > 1);
// in the shard profile, if the sharded row's aggregate publish throughput
// falls below 1.3× the single-shard row (a floor set well under the ~2×
// a quiet machine shows, for loaded CI runners); in the churn profile, if
// the server fails to settle at ≤ 64 keys after the storm (orphan GC
// leaked) or p95 submit→result exceeds 1 s (churn stalled the task plane).
//
// Usage:
//
//	ps-streambench [-profile stream|tasks|multi|pipeline|shard|churn|replay] [-items N] [-size BYTES]
//	               [-consumers N] [-window N] [-batch N] [-gap DUR]
//	               [-broker mem|kv] [-kv ADDR|SPEC] [-groups] [-wan] [-json PATH] [-strict]
//	               [-shards N] [-topics N] [-commit DUR] [-fsync] [-gens N]
//	               [-mode ROW] [-record FILE] [-trace FILE] [-speed N]
//
// -record (with -mode selecting exactly one row) taps the kv broker's
// client and writes every command, reply and timestamp to a wiretap trace;
// the data plane moves to a local store so the trace accounts for every
// server command. The trace file is written atomically (.partial, then
// rename) and partial files are removed on fatal exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proxystore/internal/connector"
	"proxystore/internal/connectors/file"
	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/multi"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/faas"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
	"proxystore/internal/pstream"
	"proxystore/internal/serial"
	"proxystore/internal/store"
	"proxystore/internal/telemetry"
	"proxystore/internal/wiretap"
)

// attrT0 carries the publish timestamp (UnixNano) so consumers can measure
// publish→deliver latency without shared clocks beyond the process's own.
const attrT0 = "bench.t0"

// Churn-profile timing and gates. The heartbeat TTL is short so crashed
// executors are detected quickly (the settle loop waits it out); the lease
// stays well above it so reclamation is heartbeat-driven, as in
// production. The gates bound the server's settled key count (orphan GC
// actually reclaims dead clients' results) and p95 submit→result latency
// (membership churn does not stall the live task path).
const (
	churnHeartbeat = 150 * time.Millisecond
	churnLease     = 2 * time.Second
	churnKeyGate   = 64
	churnP95GateMS = 1000
)

// profile is one benchmark row, printed as a table line and emitted to the
// JSON report.
type profile struct {
	Name          string   `json:"name"`
	ItemsPerSec   float64  `json:"items_per_sec"`
	MBPerSec      float64  `json:"mb_per_sec"`
	BrokerBytes   uint64   `json:"broker_bytes"`
	StoreBytes    uint64   `json:"store_bytes"`
	KVCmdsPerItem *float64 `json:"kv_cmds_per_item,omitempty"`
	// CmdsPerRTT is kv server commands over client request flushes: >1
	// means pipelining packed multiple commands into one round trip.
	// Reported by the pipeline profile, where the kv server carries only
	// broker traffic.
	CmdsPerRTT *float64 `json:"cmds_per_rtt,omitempty"`
	// ConnsPerConsumer is broker TCP connections (Dials) over consumer
	// count: ≤1 means parked consumers share connections (the wait
	// multiplexer) instead of pinning one each.
	ConnsPerConsumer *float64 `json:"conns_per_consumer,omitempty"`
	// Dials / RoundTrips are the KVBroker's client transport totals for
	// the row (kv broker only): TCP connections opened and request
	// flushes, from the broker's telemetry-backed counters.
	Dials      *uint64 `json:"dials,omitempty"`
	RoundTrips *uint64 `json:"round_trips,omitempty"`
	// FinalKeys is the kv server's key count after the churn profile's
	// settle loop — bounded by the strict gate when orphan GC holds.
	FinalKeys *int64 `json:"final_keys,omitempty"`
	// OrphansSwept counts dead clients' stranded results the endpoint's
	// sweeps reclaimed during the churn profile.
	OrphansSwept *uint64  `json:"orphans_swept,omitempty"`
	P50Ms        *float64 `json:"p50_ms,omitempty"`
	P95Ms        *float64 `json:"p95_ms,omitempty"`
	P99Ms        *float64 `json:"p99_ms,omitempty"`
}

// report is the -json document.
type report struct {
	Profile   string  `json:"profile"`
	Items     int     `json:"items"`
	Size      int     `json:"size_bytes"`
	Consumers int     `json:"consumers"`
	Window    int     `json:"window"`
	Batch     int     `json:"batch"`
	GapMS     float64 `json:"gap_ms"`
	Broker    string  `json:"broker"`
	WAN       bool    `json:"wan"`
	// Shard-profile parameters: topic/shard counts and the commit-device
	// model behind the pub-Nshard rows (commit_ms 0 with fsync true means
	// real fsync per append).
	Topics   int     `json:"topics,omitempty"`
	Shards   int     `json:"shards,omitempty"`
	CommitMS float64 `json:"commit_ms,omitempty"`
	Fsync    bool    `json:"fsync,omitempty"`
	// Gens is the churn profile's executor-generation count.
	Gens     int       `json:"gens,omitempty"`
	Profiles []profile `json:"profiles"`
}

// latencies collects publish→deliver samples across consumer goroutines,
// backed by the telemetry histogram: lock-free nanosecond observations
// instead of the old mutex-guarded sorted-sample percentile math, at
// ≲6% relative quantile error.
type latencies struct {
	h telemetry.Histogram
}

func (l *latencies) record(d time.Duration) {
	l.h.Observe(int64(d))
}

// observe records the event's publish→deliver latency if it carries a
// bench timestamp.
func (l *latencies) observe(ev pstream.Event, now time.Time) {
	raw := ev.Attr(attrT0)
	if raw == "" {
		return
	}
	nanos, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return
	}
	l.record(now.Sub(time.Unix(0, nanos)))
}

// percentiles returns p50/p95/p99 in ms, or nil when no samples landed.
func (l *latencies) percentiles() (p50, p95, p99 *float64) {
	s := l.h.Snapshot()
	if s.Count == 0 {
		return nil, nil, nil
	}
	pct := func(q float64) *float64 {
		v := s.Quantile(q) / float64(time.Millisecond)
		return &v
	}
	return pct(0.50), pct(0.95), pct(0.99)
}

func nowAttr() map[string]string {
	return map[string]string{attrT0: strconv.FormatInt(time.Now().UnixNano(), 10)}
}

func main() {
	profileKind := flag.String("profile", "stream", "benchmark profile: stream | tasks | multi | pipeline | shard | churn")
	items := flag.Int("items", 256, "objects to stream (tasks with -profile tasks)")
	size := flag.Int("size", 256<<10, "object size in bytes (task argument size with -profile tasks)")
	consumers := flag.Int("consumers", 2, "consumer count (group members with -groups, endpoint workers with -profile tasks)")
	window := flag.Int("window", 16, "batched-mode prefetch window")
	batch := flag.Int("batch", 32, "batchpub-mode SendBatch size")
	gap := flag.Duration("gap", 2*time.Millisecond, "inter-send pacing for the event/group/tasks latency profiles")
	brokerKind := flag.String("broker", "kv", "broker: mem | kv")
	kvAddr := flag.String("kv", "", "external kvstore address or cluster spec (\"primary|replica\" / \"shard1,shard2\"; kv broker only — replaces the in-process server, data plane moves to a local store so the run measures the external tier)")
	shards := flag.Int("shards", 2, "shard count for the sharded row of -profile shard")
	topics := flag.Int("topics", 8, "independent topics for -profile shard")
	commit := flag.Duration("commit", 2*time.Millisecond, "modeled per-shard commit-device latency for -profile shard (each shard owns its device, as in a real deployment; 0 disables the model)")
	fsync := flag.Bool("fsync", false, "fsync every append in -profile shard instead of modeling the commit device (honest on multi-disk hardware; on one local disk the shards' flushes share the journal and mostly serialize)")
	gens := flag.Int("gens", 6, "executor generations for -profile churn (odd generations crash with work in flight)")
	groups := flag.Bool("groups", false, "add the consumer-group work-queue profiles (stream profile)")
	wan := flag.Bool("wan", false, "model WAN delays on the redis data plane (kv broker only)")
	jsonPath := flag.String("json", "", "write machine-readable results to this path")
	strict := flag.Bool("strict", false, "exit non-zero unless push delivery beats polling on kv-cmds/item (pipeline profile: cmds/rtt and conns/consumer gates; replay profile: replayed-vs-recorded kv-cmds and op-p95 gates)")
	modeFilter := flag.String("mode", "", "run only the named benchmark row (e.g. \"group\"; required with -record, which needs exactly one row)")
	recordPath := flag.String("record", "", "record the row's broker wire traffic to this trace file (in-process kv broker only; forces a local data plane so the trace holds every server command)")
	tracePath := flag.String("trace", "", "trace file to drive -profile replay")
	speed := flag.Float64("speed", 1, "replay speedup: 1 = deterministic per-dependency replay, >1 = time-compressed load (gaps and wait timeouts divided by this)")
	flag.Parse()

	recording := *recordPath != ""
	if recording {
		if *profileKind == "replay" {
			fmt.Fprintln(os.Stderr, "-record records a live run; it cannot be combined with -profile replay")
			os.Exit(2)
		}
		if *brokerKind != "kv" || *kvAddr != "" {
			fmt.Fprintln(os.Stderr, "-record requires -broker kv with the in-process server (no -kv): the trace's kv-cmds meta comes from the server's own counter")
			os.Exit(2)
		}
	}
	var rec *wiretap.Recorder
	if recording {
		rec = wiretap.NewRecorder()
	}

	var srv *kvstore.Server
	var mkBroker func(push bool) pstream.Broker
	// mkStore builds the run's data-plane store; gobSer selects the
	// default gob serializer (needed for the tasks profile's struct
	// payloads) over the raw []byte serializer.
	var mkStore func(run string, gobSer bool) *store.Store
	switch *brokerKind {
	case "mem":
		mkBroker = func(bool) pstream.Broker { return pstream.NewMem() }
		mkStore = func(run string, _ bool) *store.Store {
			st, err := store.New("sb-"+run, local.New("sb-conn-"+run), store.WithCacheBytes(0))
			if err != nil {
				log.Fatal(err)
			}
			return st
		}
	case "kv":
		if *kvAddr != "" {
			// External tier (possibly sharded/replicated — the spec syntax
			// is the cluster package's): the broker runs against it while
			// the data plane stays in-process, so the run measures the
			// external servers' metadata plane — including through a
			// failover, which is what the CI kill-primary smoke drives.
			mkBroker = func(push bool) pstream.Broker {
				return pstream.NewKV(*kvAddr, pstream.WithKVPush(push))
			}
			mkStore = func(run string, gobSer bool) *store.Store {
				sopts := []store.Option{store.WithCacheBytes(0)}
				if !gobSer {
					sopts = append(sopts, store.WithSerializer(serial.Raw()))
				}
				st, err := store.New("sb-"+run, local.New("sb-conn-"+run), sopts...)
				if err != nil {
					log.Fatal(err)
				}
				return st
			}
			break
		}
		var err error
		srv, err = kvstore.NewServer("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		var opts []redisc.Option
		if *wan {
			redisc.SetNetwork(netsim.Testbed(5000))
			opts = append(opts, redisc.WithSites(netsim.SiteEdge, netsim.SiteCloud))
		}
		mkBroker = func(push bool) pstream.Broker {
			kvOpts := []pstream.KVOption{pstream.WithKVPush(push)}
			if rec != nil {
				kvOpts = append(kvOpts, pstream.WithKVWrap(rec.WrapKV))
			}
			return pstream.NewKV(srv.Addr(), kvOpts...)
		}
		mkStore = func(run string, gobSer bool) *store.Store {
			sopts := []store.Option{store.WithCacheBytes(0)}
			if !gobSer {
				sopts = append(sopts, store.WithSerializer(serial.Raw()))
			}
			// Recording forces the data plane off the kv server: the redis
			// connector's commands would land in the server's counter but
			// not in the trace, so a replay could never match the recorded
			// kv-cmds/item.
			conn := connector.Connector(redisc.New(srv.Addr(), opts...))
			if recording {
				conn = local.New("sb-conn-" + run)
			}
			st, err := store.New("sb-"+run, conn, sopts...)
			if err != nil {
				log.Fatal(err)
			}
			return st
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown broker %q\n", *brokerKind)
		os.Exit(2)
	}

	unit, rate := "it", "items/s"
	if *profileKind == "tasks" || *profileKind == "churn" {
		unit, rate = "task", "tasks/s"
	}
	switch *profileKind {
	case "replay":
		fmt.Printf("replay profile: %s at %gx against a fresh in-process kv server\n\n", *tracePath, *speed)
	case "tasks":
		fmt.Printf("%d tasks × %d KiB args to a %d-worker endpoint over %q broker (submit→execute→result)\n\n",
			*items, *size>>10, *consumers, *brokerKind)
	case "churn":
		fmt.Printf("churn profile: %d executor generations × %d tasks (%d KiB args) against a %d-worker endpoint; odd generations crash with results in flight\n\n",
			*gens, *items, *size>>10, *consumers)
	case "multi":
		fmt.Printf("streaming %d × {4 KiB, %d KiB} to %d consumers over %q broker via a multi-connector store\n\n",
			*items, *size>>10, *consumers, *brokerKind)
	case "pipeline":
		fmt.Printf("transport profile: %d × %d KiB items over %q broker, local data plane (kv server carries broker traffic only)\n\n",
			*items, *size>>10, *brokerKind)
	case "shard":
		durability := fmt.Sprintf("modeled %v commit device per shard", *commit)
		if *fsync {
			durability = "fsync per append"
		}
		fmt.Printf("shard profile: %d publishes across %d independent topics, 1 vs %d durable kv shards (%s)\n\n",
			*items, *topics, *shards, durability)
	default:
		fmt.Printf("streaming %d × %d KiB to %d consumers over %q broker\n\n",
			*items, *size>>10, *consumers, *brokerKind)
	}
	hdrExtra := ""
	if *profileKind == "pipeline" {
		hdrExtra = fmt.Sprintf(" %9s %10s", "cmds/rtt", "conns/cons")
	}
	fmt.Printf("%-11s %9s %8s %13s %13s %10s %8s %8s %8s%s\n",
		"mode", rate, "MB/s", "broker-bytes", "store-bytes", "kv-cmds/"+unit, "p50 ms", "p95 ms", "p99 ms", hdrExtra)

	results := make(map[string]profile)
	var order []string
	// reportProfile is the -json document's profile field; the replay
	// profile overrides it with the recorded run's profile so ps-benchdiff
	// can compare the replay report against the live one.
	reportProfile := *profileKind
	replayOK := true
	// The multi profile spools its file-connector child into temp dirs;
	// fatalf removes them before exiting, because log.Fatal bypasses
	// defers and would otherwise strand items×size bytes in /tmp on
	// every failed run.
	var multiDirs []string
	// recPartial is the in-progress trace file; a fatal exit mid-record
	// must not strand a half-written (and unloadable) trace on disk.
	var recPartial string
	rmMultiDirs := func() {
		for _, d := range multiDirs {
			os.RemoveAll(d)
		}
		if recPartial != "" {
			os.Remove(recPartial)
		}
	}
	defer rmMultiDirs()
	fatalf := func(format string, args ...any) {
		rmMultiDirs()
		log.Fatalf(format, args...)
	}
	// rowConsumers is the consumer count behind the pipeline profile's
	// conns/consumer column; the pipe-group row overrides it to its
	// (possibly widened) member count before calling run.
	rowConsumers := *consumers
	printRow := func(p profile) {
		opt := func(v *float64) string {
			if v == nil {
				return "-"
			}
			return fmt.Sprintf("%.2f", *v)
		}
		cmdsCol := "-"
		if p.KVCmdsPerItem != nil {
			cmdsCol = fmt.Sprintf("%.1f", *p.KVCmdsPerItem)
		}
		rowExtra := ""
		if *profileKind == "pipeline" {
			rowExtra = fmt.Sprintf(" %9s %10s", opt(p.CmdsPerRTT), opt(p.ConnsPerConsumer))
		}
		fmt.Printf("%-11s %9.0f %8.1f %13d %13d %10s %8s %8s %8s%s\n",
			p.Name, p.ItemsPerSec, p.MBPerSec, p.BrokerBytes, p.StoreBytes,
			cmdsCol, opt(p.P50Ms), opt(p.P95Ms), opt(p.P99Ms), rowExtra)
	}
	// run executes one benchmark row. newStore builds the row's store
	// (so the multi profile can swap connectors) and rowSize is the
	// payload size behind the MB/s column.
	run := func(mode string, push bool, newStore func(run string) *store.Store, rowSize int, f func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error) {
		if *modeFilter != "" && mode != *modeFilter {
			return
		}
		st := newStore(mode)
		defer st.Close()
		cb := pstream.NewCounting(mkBroker(push))
		defer cb.Close()
		lats := &latencies{}
		var cmds0 uint64
		if srv != nil {
			cmds0 = srv.Commands()
		}
		start := time.Now()
		if err := f(cb, st, lats); err != nil {
			fatalf("%s: %v", mode, err)
		}
		elapsed := time.Since(start)
		m := st.Metrics()
		p := profile{
			Name:        mode,
			ItemsPerSec: float64(*items) / elapsed.Seconds(),
			MBPerSec:    float64(*items*rowSize) / 1e6 / elapsed.Seconds(),
			BrokerBytes: cb.BytesPublished() + cb.BytesDelivered(),
			StoreBytes:  m.BytesPut + m.BytesGot,
		}
		if srv != nil {
			perItem := float64(srv.Commands()-cmds0) / float64(*items)
			p.KVCmdsPerItem = &perItem
		}
		p.P50Ms, p.P95Ms, p.P99Ms = lats.percentiles()
		if kvb, ok := cb.Broker.(*pstream.KVBroker); ok {
			dials, rtts := kvb.Dials(), kvb.RoundTrips()
			p.Dials, p.RoundTrips = &dials, &rtts
			if *profileKind == "pipeline" && srv != nil {
				if rtts > 0 {
					v := float64(srv.Commands()-cmds0) / float64(rtts)
					p.CmdsPerRTT = &v
				}
				if rowConsumers > 0 {
					cc := float64(dials) / float64(rowConsumers)
					p.ConnsPerConsumer = &cc
				}
			}
		}
		results[mode] = p
		order = append(order, mode)
		printRow(p)
	}
	rawStore := func(run string) *store.Store { return mkStore(run, false) }
	gobStore := func(run string) *store.Store { return mkStore(run, true) }
	// multiStore builds a policy-routed multi-connector store: payloads up
	// to 64 KiB land in an in-memory child, larger ones in a file child.
	multiStore := func(run string) *store.Store {
		dir, err := os.MkdirTemp("", "sb-multi-*")
		if err != nil {
			fatalf("%v", err)
		}
		multiDirs = append(multiDirs, dir)
		bulk, err := file.New(dir)
		if err != nil {
			fatalf("%v", err)
		}
		router, err := multi.New(
			multi.Child{Name: "fast", Connector: local.New("sbm-fast-" + run), Policy: multi.Policy{MaxSize: 64 << 10, Priority: 10}},
			multi.Child{Name: "bulk", Connector: bulk, Policy: multi.Policy{Priority: 5}},
		)
		if err != nil {
			fatalf("%v", err)
		}
		st, err := store.New("sbm-"+run, router, store.WithSerializer(serial.Raw()), store.WithCacheBytes(0))
		if err != nil {
			fatalf("%v", err)
		}
		return st
	}

	payload := make([]byte, *size)
	for i := range payload {
		payload[i] = byte(i * 17)
	}

	switch *profileKind {
	case "tasks":
		run("tasks", true, gobStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return taskRoundTrips(cb, st, payload, *items, *consumers, *gap, lats)
		})
		if srv != nil {
			run("tasks-poll", false, gobStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
				return taskRoundTrips(cb, st, payload, *items, *consumers, *gap, lats)
			})
		}
	case "multi":
		// Same batched streaming workload, two payload classes: 4 KiB
		// routes to the in-memory child, -size to the file child.
		small := make([]byte, 4<<10)
		for i := range small {
			small[i] = byte(i * 31)
		}
		run("multi-small", true, multiStore, len(small), func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return proxyStream(cb, st, small, streamOpts{items: *items, consumers: *consumers, window: *window}, lats)
		})
		run("multi-large", true, multiStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: *window}, lats)
		})
	case "stream":
		run("inline", true, rawStore, *size, func(cb *pstream.CountingBroker, _ *store.Store, lats *latencies) error {
			return inlineFanOut(cb, payload, *items, *consumers, lats)
		})
		run("eager", true, rawStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: 1}, lats)
		})
		run("batched", true, rawStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: *window}, lats)
		})
		run("batchpub", true, rawStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: *window, sendBatch: *batch}, lats)
		})
		// The latency profiles: paced sends, consumers blocked between events.
		// On the kv broker the poll variant runs the same workload over the
		// polling fallback — same server, same run — for a direct comparison.
		run("event", true, rawStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: 1, gap: *gap}, lats)
		})
		if srv != nil {
			run("event-poll", false, rawStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
				return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: 1, gap: *gap}, lats)
			})
		}
		if *groups {
			run("group", true, rawStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
				return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: *window, gap: *gap, group: true}, lats)
			})
			if srv != nil {
				run("group-poll", false, rawStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
					return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: *window, gap: *gap, group: true}, lats)
				})
			}
		}
	case "pipeline":
		if srv == nil {
			fmt.Fprintln(os.Stderr, "the pipeline profile requires -broker kv")
			os.Exit(2)
		}
		// The data plane stays in-process (local connector), so every
		// command the kv server sees belongs to the broker: cmds/rtt and
		// conns/consumer are pure metadata-plane transport measurements.
		localStore := func(run string) *store.Store {
			st, err := store.New("sb-"+run, local.New("sb-conn-"+run), store.WithSerializer(serial.Raw()), store.WithCacheBytes(0))
			if err != nil {
				fatalf("%v", err)
			}
			return st
		}
		// pipe-fanout exercises the pipelined ack path: windowed consumers
		// commit ranges of offsets, so cmds/rtt > 1 ⇔ those commits pack
		// multiple INCRs into one flush.
		run("pipe-fanout", true, localStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: *consumers, window: *window}, lats)
		})
		// pipe-group parks enough group members that connection sharing is
		// unambiguous: without the wait multiplexer, N parked members would
		// pin N blocking-wait connections (conns/consumer ≥ 1).
		pipeMembers := *consumers
		if pipeMembers < 16 {
			pipeMembers = 16
		}
		rowConsumers = pipeMembers
		run("pipe-group", true, localStore, *size, func(cb *pstream.CountingBroker, st *store.Store, lats *latencies) error {
			return proxyStream(cb, st, payload, streamOpts{items: *items, consumers: pipeMembers, window: *window, gap: *gap, group: true}, lats)
		})
	case "shard":
		// The shard profile measures what sharding actually buys: the
		// metadata plane's write throughput when every publish must be
		// committed to a shard's durable log before it is acknowledged.
		// Each row brings up its own durable in-process tier (1 shard,
		// then -shards), publishes -items events spread across -topics
		// independent topics — topics hash to shards by their
		// "ps:<topic>" placement prefix, so independent topics spread —
		// and reports aggregate publish throughput. No payloads, no
		// consumers: the per-shard commit log is the bottleneck under
		// test, and it is the one resource that multiplies with shards.
		// By default the commit device is modeled (-commit, netsim
		// style: real appends, modeled flush time) because co-located
		// shards sharing one disk would hide the scaling; -fsync swaps
		// in the real thing for multi-disk hardware.
		shardRow := func(name string, n int) {
			dir, err := os.MkdirTemp("", "sb-shard-*")
			if err != nil {
				fatalf("%v", err)
			}
			defer os.RemoveAll(dir)
			durOpt := kvstore.WithModeledCommitLatency(*commit)
			if *fsync {
				durOpt = kvstore.WithAOFSync()
			}
			var srvs []*kvstore.Server
			var addrs []string
			for i := 0; i < n; i++ {
				s, err := kvstore.NewServer("127.0.0.1:0",
					kvstore.WithPersistence(filepath.Join(dir, fmt.Sprintf("shard%d.aof", i))),
					durOpt)
				if err != nil {
					fatalf("%v", err)
				}
				defer s.Close()
				srvs = append(srvs, s)
				addrs = append(addrs, s.Addr())
			}
			cb := pstream.NewCounting(pstream.NewKV(strings.Join(addrs, ",")))
			defer cb.Close()
			lats := &latencies{}
			start := time.Now()
			if err := shardPublish(cb, *topics, *items, lats); err != nil {
				fatalf("%s: %v", name, err)
			}
			elapsed := time.Since(start)
			var cmds uint64
			for _, s := range srvs {
				cmds += s.Commands()
			}
			perItem := float64(cmds) / float64(*items)
			p := profile{
				Name:          name,
				ItemsPerSec:   float64(*items) / elapsed.Seconds(),
				BrokerBytes:   cb.BytesPublished() + cb.BytesDelivered(),
				KVCmdsPerItem: &perItem,
			}
			p.P50Ms, p.P95Ms, p.P99Ms = lats.percentiles()
			results[name] = p
			order = append(order, name)
			printRow(p)
		}
		shardRow("pub-1shard", 1)
		shardRow(fmt.Sprintf("pub-%dshard", *shards), *shards)
	case "churn":
		if srv == nil {
			fmt.Fprintln(os.Stderr, "the churn profile requires -broker kv and the in-process server (no -kv)")
			os.Exit(2)
		}
		// The data plane rides a local store so the kv server's key count
		// — the thing the gate bounds — is pure broker + membership state.
		churnStore, err := store.New("sb-churn", local.New("sb-conn-churn"), store.WithCacheBytes(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer churnStore.Close()
		cli := kvstore.NewClient(srv.Addr())
		defer cli.Close()
		cb := pstream.NewCounting(pstream.NewKV(srv.Addr(),
			pstream.WithKVPush(true),
			pstream.WithKVHeartbeat(churnHeartbeat),
			pstream.WithKVLease(churnLease),
			pstream.WithKVTruncate(1)))
		defer cb.Close()
		lats := &latencies{}
		cmds0 := srv.Commands()
		res, err := churnFleet(cb, churnStore,
			func() (int64, error) { return cli.DBSize(context.Background()) },
			payload, *gens, *items, *consumers, *gap, lats)
		if err != nil {
			fatalf("churn: %v", err)
		}
		sm := churnStore.Metrics()
		perItem := float64(srv.Commands()-cmds0) / float64(res.completed)
		p := profile{
			Name:          "churn",
			ItemsPerSec:   float64(res.completed) / res.workDur.Seconds(),
			MBPerSec:      float64(res.completed*(*size)) / 1e6 / res.workDur.Seconds(),
			BrokerBytes:   cb.BytesPublished() + cb.BytesDelivered(),
			StoreBytes:    sm.BytesPut + sm.BytesGot,
			KVCmdsPerItem: &perItem,
			FinalKeys:     &res.finalKeys,
			OrphansSwept:  &res.swept,
		}
		p.P50Ms, p.P95Ms, p.P99Ms = lats.percentiles()
		results["churn"] = p
		order = append(order, "churn")
		printRow(p)
	case "replay":
		if srv == nil {
			fmt.Fprintln(os.Stderr, "the replay profile requires -broker kv and the in-process server (no -kv)")
			os.Exit(2)
		}
		if *tracePath == "" {
			fmt.Fprintln(os.Stderr, "the replay profile requires -trace <file> (record one with -record)")
			os.Exit(2)
		}
		tr, err := wiretap.Load(*tracePath)
		if err != nil {
			fatalf("loading trace: %v", err)
		}
		recItems, _ := strconv.Atoi(tr.Meta["items"])
		if recItems <= 0 {
			fatalf("trace %s carries no items meta; was it recorded with -record?", *tracePath)
		}
		rowName := tr.Meta["mode"]
		if rowName == "" {
			rowName = "replay"
		}
		if p := tr.Meta["profile"]; p != "" {
			// The JSON report takes the recorded profile so ps-benchdiff
			// matches the replay row against the live run's report.
			reportProfile = p
		}
		// Recorded comparators: kv-cmds/item from the recording's meta,
		// op-duration percentiles recomputed from the trace itself.
		// Blocking waits are excluded on both sides: their durations are
		// park time (and scale with -speed), not command service time.
		recCmdsPerItem, _ := strconv.ParseFloat(tr.Meta["kv_cmds_per_item"], 64)
		recLats := &latencies{}
		for i := range tr.Ops {
			if op := &tr.Ops[i]; !op.Blocking {
				recLats.record(time.Duration(op.End - op.Start))
			}
		}
		_, recP95, _ := recLats.percentiles()

		lats := &latencies{}
		cli := kvstore.NewClient(srv.Addr())
		defer cli.Close()
		// A timing tap under the replayer measures each re-issued op, so
		// the row's latency columns are replayed op durations — directly
		// comparable to the recorded ops' own durations.
		target := kvstore.NewTap(cli, func(_ string, _ [][]byte, blocking bool) kvstore.TapDone {
			if blocking {
				return func([][]byte, error) {}
			}
			t0 := time.Now()
			return func([][]byte, error) { lats.record(time.Since(t0)) }
		})
		rep := wiretap.NewReplayer(wiretap.WithKVTarget(target), wiretap.WithSpeed(*speed))
		cmds0 := srv.Commands()
		rr, err := rep.Run(context.Background(), tr)
		if err != nil {
			fatalf("replay: %v", err)
		}
		perItem := float64(srv.Commands()-cmds0) / float64(recItems)
		p := profile{
			Name:          rowName,
			ItemsPerSec:   float64(recItems) / rr.Duration.Seconds(),
			KVCmdsPerItem: &perItem,
		}
		p.P50Ms, p.P95Ms, p.P99Ms = lats.percentiles()
		printRow(p)
		if *speed > 1 {
			// Time compression deliberately overloads the target — the
			// printed latency columns are the load measurement, not a
			// fidelity signal, so they stay out of the JSON report (and
			// out of ps-benchdiff's p95 gate).
			p.P50Ms, p.P95Ms, p.P99Ms = nil, nil, nil
		}
		results[rowName] = p
		order = append(order, rowName)
		fmt.Printf("\nreplayed %d ops at %gx in %v: %d divergences, %d stragglers, %d stall releases",
			rr.Ops, *speed, rr.Duration.Round(time.Millisecond), rr.Divergences, rr.Stragglers, rr.StallReleases)
		if rr.Stragglers > 0 {
			replayOK = false
		}
		if recCmdsPerItem > 0 {
			ratio := perItem / recCmdsPerItem
			fmt.Printf("\nreplay: %.1f kv-cmds/item vs %.1f recorded (%+.0f%%; gate ±10%%)",
				perItem, recCmdsPerItem, (ratio-1)*100)
			// Two-sided: a replay that issues meaningfully fewer commands
			// than the recording is as unfaithful as one issuing more.
			if ratio > 1.10 || ratio < 0.90 {
				replayOK = false
			}
		}
		if recP95 != nil && p.P95Ms != nil && *speed <= 1 {
			// Only 1× replay promises recorded-shaped service times.
			fmt.Printf("\nreplay: op p95 %.2f ms vs %.2f ms recorded (gate ≤ 2x + 5 ms)", *p.P95Ms, *recP95)
			if *p.P95Ms > *recP95*2+5 {
				replayOK = false
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profileKind)
		os.Exit(2)
	}

	if recording {
		if len(order) != 1 {
			fatalf("-record needs exactly one benchmark row in the run (select one with -mode); this run produced %d", len(order))
		}
		row := results[order[0]]
		rec.SetMeta("profile", *profileKind)
		rec.SetMeta("mode", order[0])
		rec.SetMeta("items", strconv.Itoa(*items))
		rec.SetMeta("consumers", strconv.Itoa(*consumers))
		if row.KVCmdsPerItem != nil {
			rec.SetMeta("kv_cmds_per_item", strconv.FormatFloat(*row.KVCmdsPerItem, 'f', -1, 64))
		}
		tr := rec.Trace()
		// Write-then-rename: a crash mid-write leaves only the .partial
		// (removed by fatalf), never a torn file under the final name —
		// the trace codec would refuse a torn file anyway, loudly.
		recPartial = *recordPath + ".partial"
		if err := tr.Save(recPartial); err != nil {
			fatalf("recording trace: %v", err)
		}
		if err := os.Rename(recPartial, *recordPath); err != nil {
			fatalf("recording trace: %v", err)
		}
		recPartial = ""
		fmt.Printf("recorded %d ops to %s\n", len(tr.Ops), *recordPath)
	}

	pushWins := true
	for _, pair := range [][2]string{{"event", "event-poll"}, {"group", "group-poll"}, {"tasks", "tasks-poll"}} {
		push, ok1 := results[pair[0]]
		poll, ok2 := results[pair[1]]
		if !ok1 || !ok2 || push.KVCmdsPerItem == nil || poll.KVCmdsPerItem == nil {
			continue
		}
		delta := (1 - *push.KVCmdsPerItem / *poll.KVCmdsPerItem) * 100
		fmt.Printf("\n%s: push delivery %.1f kv-cmds/item vs polling %.1f (%.0f%% fewer)",
			pair[0], *push.KVCmdsPerItem, *poll.KVCmdsPerItem, delta)
		if *push.KVCmdsPerItem >= *poll.KVCmdsPerItem {
			pushWins = false
		}
	}
	pipeOK := true
	if p, ok := results["pipe-fanout"]; ok && p.CmdsPerRTT != nil {
		fmt.Printf("\npipe-fanout: %.2f kv commands per round trip (pipelining amortizes flushes when > 1)", *p.CmdsPerRTT)
		if *p.CmdsPerRTT <= 1.02 {
			pipeOK = false
		}
	}
	if p, ok := results["pipe-group"]; ok && p.ConnsPerConsumer != nil {
		fmt.Printf("\npipe-group: %.2f connections per parked member (mux shares the wait connection when ≤ 1)", *p.ConnsPerConsumer)
		if *p.ConnsPerConsumer > 1 {
			pipeOK = false
		}
	}
	churnOK := true
	if p, ok := results["churn"]; ok && p.FinalKeys != nil {
		fmt.Printf("\nchurn: %d orphaned results swept; server settled at %d keys (gate %d)",
			*p.OrphansSwept, *p.FinalKeys, churnKeyGate)
		if *p.FinalKeys > churnKeyGate {
			churnOK = false
		}
		if p.P95Ms == nil || *p.P95Ms > churnP95GateMS {
			churnOK = false
		}
	}
	shardOK := true
	if one, ok := results["pub-1shard"]; ok && len(order) == 2 {
		many := results[order[1]]
		speedup := many.ItemsPerSec / one.ItemsPerSec
		fmt.Printf("\n%s: %.2fx aggregate publish throughput vs one shard", many.Name, speedup)
		// The strict floor is deliberately below the ~linear scaling a
		// quiet machine shows: loaded CI runners share cores between the
		// shard servers and the publishers.
		if speedup < 1.3 {
			shardOK = false
		}
	}
	fmt.Println()

	if *jsonPath != "" {
		rep := report{
			Profile: reportProfile,
			Items:   *items, Size: *size, Consumers: *consumers,
			Window: *window, Batch: *batch,
			GapMS:  float64(*gap) / float64(time.Millisecond),
			Broker: *brokerKind, WAN: *wan,
		}
		if *profileKind == "shard" {
			rep.Topics, rep.Shards, rep.Fsync = *topics, *shards, *fsync
			if !*fsync {
				rep.CommitMS = float64(*commit) / float64(time.Millisecond)
			}
		}
		if *profileKind == "churn" {
			rep.Gens = *gens
		}
		for _, name := range order {
			rep.Profiles = append(rep.Profiles, results[name])
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *jsonPath, err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *strict && !pushWins {
		fmt.Fprintln(os.Stderr, "strict: push delivery did not beat the polling fallback on kv-cmds/item")
		os.Exit(1)
	}
	if *strict && !pipeOK {
		fmt.Fprintln(os.Stderr, "strict: pipelining/mux transport gates failed (need cmds/rtt > 1.02 and conns/consumer ≤ 1)")
		os.Exit(1)
	}
	if *strict && !shardOK {
		fmt.Fprintln(os.Stderr, "strict: sharded publish throughput below 1.3x the single-shard row")
		os.Exit(1)
	}
	if *strict && !churnOK {
		fmt.Fprintf(os.Stderr, "strict: churn gates failed (need ≤ %d settled keys and p95 submit→result ≤ %d ms)\n", churnKeyGate, churnP95GateMS)
		os.Exit(1)
	}
	if *strict && !replayOK {
		fmt.Fprintln(os.Stderr, "strict: replay gates failed (need kv-cmds/item within ±10% of recorded, op p95 ≤ 2x recorded + 5 ms, no stragglers)")
		os.Exit(1)
	}
}

// benchFnOnce registers the tasks profile's function exactly once (the
// faas registry is process-global).
var benchFnOnce sync.Once

// taskRoundTrips drives the stream-backed task plane: paced submissions
// through a StreamExecutor to a StreamEndpoint worker pool, recording each
// task's submit→execute→result latency. The broker carries only task and
// result events; the -size argument bytes ride the store.
func taskRoundTrips(b pstream.Broker, st *store.Store, payload []byte, tasks, workers int, gap time.Duration, lats *latencies) error {
	benchFnOnce.Do(func() {
		faas.RegisterFunction("bench-len", func(_ context.Context, args []any) (any, error) {
			return len(args[0].([]byte)), nil
		})
	})
	// A hard deadline turns a lost result (or any task-plane regression)
	// into a diagnosable failure instead of a hung CI job — scaled by the
	// run's own pacing so large -items/-gap combinations stay legal.
	ctx, cancel := context.WithTimeout(context.Background(),
		2*time.Minute+2*time.Duration(tasks)*gap)
	defer cancel()
	epName := "bench-" + connector.NewID()[:8]
	ep := faas.StartStreamEndpoint(st, b, epName, workers)
	defer ep.Close()
	exec, err := faas.NewStreamExecutor(st, b, epName)
	if err != nil {
		return err
	}
	defer exec.Close()

	var wg sync.WaitGroup
	errs := make(chan error, tasks)
	for i := 0; i < tasks; i++ {
		t0 := time.Now()
		fut, err := exec.Submit(ctx, "bench-len", payload)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := fut.Result(ctx)
			if err != nil {
				errs <- err
				return
			}
			if v.(int) != len(payload) {
				errs <- fmt.Errorf("task saw %v bytes, want %d", v, len(payload))
				return
			}
			lats.record(time.Since(t0))
		}()
		if gap > 0 {
			time.Sleep(gap)
		}
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// churnResult is what churnFleet hands back to the churn profile's row.
type churnResult struct {
	completed int           // tasks submitted, executed, and awaited
	workDur   time.Duration // the workload alone, excluding the settle loop
	finalKeys int64         // server key count after the settle loop
	swept     uint64        // orphaned results the endpoint reclaimed
}

// churnFleet drives the churn profile's workload: gens generations of
// ephemeral StreamExecutors against one long-lived endpoint. Every
// generation submits and awaits `tasks` tasks (the latency samples); even
// generations then Close cleanly, odd generations submit two more tasks
// and Kill — a crash with results in flight, stranding them on the shared
// result topic addressed to a client whose heartbeat is about to expire.
// After the last generation it waits out the heartbeat TTL and sweeps
// until the server's key count settles, returning the settled count for
// the strict gate.
func churnFleet(b pstream.Broker, st *store.Store, dbsize func() (int64, error), payload []byte, gens, tasks, workers int, gap time.Duration, lats *latencies) (churnResult, error) {
	benchFnOnce.Do(func() {
		faas.RegisterFunction("bench-len", func(_ context.Context, args []any) (any, error) {
			return len(args[0].([]byte)), nil
		})
	})
	var res churnResult
	ctx, cancel := context.WithTimeout(context.Background(),
		2*time.Minute+2*time.Duration(gens*tasks)*gap)
	defer cancel()
	epName := "churn-" + connector.NewID()[:8]
	ep := faas.StartStreamEndpoint(st, b, epName, workers)
	defer ep.Close()

	start := time.Now()
	for g := 0; g < gens; g++ {
		exec, err := faas.NewStreamExecutor(st, b, epName)
		if err != nil {
			return res, err
		}
		var wg sync.WaitGroup
		errs := make(chan error, tasks)
		for i := 0; i < tasks; i++ {
			t0 := time.Now()
			fut, err := exec.Submit(ctx, "bench-len", payload)
			if err != nil {
				return res, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := fut.Result(ctx)
				if err != nil {
					errs <- err
					return
				}
				if v.(int) != len(payload) {
					errs <- fmt.Errorf("task saw %v bytes, want %d", v, len(payload))
					return
				}
				lats.record(time.Since(t0))
			}()
			if gap > 0 {
				time.Sleep(gap)
			}
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return res, fmt.Errorf("generation %d: %w", g, err)
		}
		res.completed += tasks
		if g%2 == 0 {
			if err := exec.Close(); err != nil {
				return res, fmt.Errorf("generation %d close: %w", g, err)
			}
			continue
		}
		// A crash with work in flight: these results will land on the
		// shared result topic addressed to a client that no longer exists,
		// and only the endpoint's heartbeat-driven sweeps can reclaim them.
		for i := 0; i < 2; i++ {
			if _, err := exec.Submit(ctx, "bench-len", payload); err != nil {
				return res, err
			}
		}
		exec.Kill()
	}
	res.workDur = time.Since(start)

	// Settle: wait out the crashed executors' heartbeats, then sweep until
	// the key count stops falling — the endpoint's janitor loop, compressed
	// so the bench terminates promptly.
	time.Sleep(2 * churnHeartbeat)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := ep.SweepResults(ctx); err != nil {
			return res, fmt.Errorf("sweep: %w", err)
		}
		n, err := dbsize()
		if err != nil {
			return res, err
		}
		res.finalKeys, res.swept = n, ep.Swept()
		if n <= churnKeyGate || time.Now().After(deadline) {
			return res, nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// inlineFanOut pushes payloads through the broker itself: the baseline
// where the metadata plane is the data plane.
func inlineFanOut(b pstream.Broker, payload []byte, items, consumers int, lats *latencies) error {
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, consumers+1)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sub, err := b.Subscribe(ctx, "inline", fmt.Sprintf("c%d", c))
			if err != nil {
				errs <- err
				return
			}
			defer sub.Close()
			for i := 0; i < items; i++ {
				ev, err := sub.Next(ctx)
				if err != nil {
					errs <- err
					return
				}
				lats.observe(ev, time.Now())
				if len(ev.ProxyData) != len(payload) {
					errs <- fmt.Errorf("consumer %d: truncated inline payload", c)
					return
				}
				if _, err := sub.Ack(ctx, ev); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			ev := pstream.Event{Producer: "p", Seq: uint64(i + 1), ProxyData: payload, Attrs: nowAttr()}
			if err := b.Publish(ctx, "inline", ev); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	return <-errs
}

// shardPublish drives the shard profile's workload: `topics` concurrent
// producers publishing metadata-only events, each to its own topic, as
// fast as the broker accepts them. The producers draw from one shared
// budget of `items` publishes rather than fixed per-topic shares: topics
// hash to shards, and with fixed shares an uneven topic→shard split would
// leave the lighter shard idle at the tail, understating the tier's
// aggregate rate. Topic names are fixed (each row gets fresh servers) so
// the split is identical across rows and runs. Per-publish latency is
// recorded directly (there are no consumers to observe delivery).
func shardPublish(b pstream.Broker, topics, items int, lats *latencies) error {
	ctx := context.Background()
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, topics)
	for t := 0; t < topics; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			topic := fmt.Sprintf("shard-bench-%d", t)
			var seq uint64
			for next.Add(1) <= int64(items) {
				seq++
				t0 := time.Now()
				if err := b.Publish(ctx, topic, pstream.Event{Producer: "p", Seq: seq}); err != nil {
					errs <- err
					return
				}
				lats.record(time.Since(t0))
			}
		}(t)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// streamOpts parameterizes one proxyStream run.
type streamOpts struct {
	items, consumers, window int
	// sendBatch > 0 publishes in SendBatch chunks of that size.
	sendBatch int
	// gap paces sends, modeling an event stream rather than a bulk
	// transfer: consumers park between arrivals, which is where push vs
	// polling delivery diverges.
	gap time.Duration
	// group makes the consumers members of one consumer group (each item
	// claimed by exactly one member) instead of independent fan-out readers.
	group bool
}

// proxyStream is the ProxyStream pattern: payloads through the store,
// events through the broker, consumers resolving with the given window.
func proxyStream(b pstream.Broker, st *store.Store, payload []byte, o streamOpts, lats *latencies) error {
	ctx := context.Background()
	topic := "px-" + connector.NewID()[:8]
	evictAfter := o.consumers
	if o.group {
		evictAfter = 1 // the whole group counts as one consumer
	}
	var wg sync.WaitGroup
	errs := make(chan error, o.consumers+1)
	var consumed sync.Map
	for c := 0; c < o.consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			copts := []pstream.ConsumerOption{pstream.WithWindow(o.window)}
			if o.group {
				copts = append(copts, pstream.WithGroup("pool"))
			}
			cons, err := pstream.NewConsumer[[]byte](ctx, b, topic, fmt.Sprintf("c%d", c), copts...)
			if err != nil {
				errs <- err
				return
			}
			defer cons.Close()
			n := 0
			for {
				it, err := cons.Next(ctx)
				if errors.Is(err, pstream.ErrEnd) {
					consumed.Store(c, n)
					return
				}
				if err != nil {
					errs <- err
					return
				}
				lats.observe(it.Event, time.Now())
				v, err := it.Value(ctx)
				if err != nil {
					errs <- err
					return
				}
				if len(v) != len(payload) {
					errs <- fmt.Errorf("consumer %d: truncated payload", c)
					return
				}
				if err := it.Ack(ctx); err != nil {
					errs <- err
					return
				}
				n++
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		prod := pstream.NewProducer[[]byte](st, b, topic, pstream.WithEvictOnAck(evictAfter))
		if o.sendBatch > 0 {
			for sent := 0; sent < o.items; sent += o.sendBatch {
				n := o.sendBatch
				if o.items-sent < n {
					n = o.items - sent
				}
				batch := make([][]byte, n)
				attrs := make([]map[string]string, n)
				for i := range batch {
					batch[i] = payload
				}
				// One timestamp per batch: the batch is published atomically.
				t0 := nowAttr()
				for i := range attrs {
					attrs[i] = t0
				}
				if err := prod.SendBatch(ctx, batch, attrs); err != nil {
					errs <- err
					return
				}
				if o.gap > 0 {
					time.Sleep(o.gap)
				}
			}
		} else {
			for i := 0; i < o.items; i++ {
				if err := prod.Send(ctx, payload, nowAttr()); err != nil {
					errs <- err
					return
				}
				if o.gap > 0 {
					time.Sleep(o.gap)
				}
			}
		}
		if err := prod.Close(ctx); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	total := 0
	consumed.Range(func(_, v any) bool { total += v.(int); return true })
	want := o.items * o.consumers
	if o.group {
		want = o.items
	}
	if total != want {
		return fmt.Errorf("consumed %d items in total, want %d", total, want)
	}
	return nil
}
