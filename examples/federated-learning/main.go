// Federated learning: the paper's §5.5 workload — an aggregator trains a
// model across edge devices through a FaaS fabric, moving weights by proxy
// so model size is not bounded by the cloud's payload limit.
package main

import (
	"context"
	"fmt"
	"log"

	"proxystore/internal/connectors/local"
	"proxystore/internal/faas"
	"proxystore/internal/flox"
	"proxystore/internal/ml"
	"proxystore/internal/netsim"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

func main() {
	ctx := context.Background()
	net := netsim.Testbed(1000)

	cloud := faas.NewCloud(net, netsim.SiteCloud)
	const devices = 4
	execs := make([]*faas.Executor, devices)
	for i := 0; i < devices; i++ {
		name := fmt.Sprintf("edge-%d", i)
		ep := faas.StartEndpoint(cloud, name, netsim.SiteEdge, 1)
		defer ep.Close()
		execs[i] = faas.NewExecutor(cloud, name, netsim.SiteCloud)
	}

	st, err := store.New("fl-store", local.New("fl-conn"),
		store.WithSerializer(serial.Raw()))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	arch := flox.Arch{InputDim: 28 * 28, HiddenDim: 32, Blocks: 2, Classes: 10}
	agg := flox.NewAggregator(flox.Options{
		Arch:        arch,
		Devices:     execs,
		Store:       st, // weights travel by proxy
		DataSize:    64,
		LocalEpochs: 1,
		LR:          0.02,
	})

	test := ml.SyntheticFashion(200, 999)
	model := arch.NewModel(1)
	fmt.Printf("model: %d parameters (%d KB of weights)\n",
		model.NumParams(), model.NumParams()*4/1024)
	fmt.Printf("round 0 accuracy: %.1f%%\n", 100*agg.Model().Evaluate(test))

	for round := 1; round <= 5; round++ {
		if _, err := agg.Round(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d accuracy: %.1f%%\n", round, 100*agg.Model().Evaluate(test))
	}
	m := st.Metrics()
	fmt.Printf("weights moved by proxy: %d proxies, %d MB through the store\n",
		m.Proxies, m.BytesPut>>20)
}
