// Federated learning over pstream: the paper's §5.5 workload restructured
// as the follow-up ProxyStream pattern — a continuous task/update dataflow
// instead of per-round RPC.
//
// The aggregator publishes each round's training tasks (global weights +
// a data-shard assignment) to the "tasks" topic in one batched publish; a
// pool of trainer workers consumes the topic as a **consumer group**, so
// each task is claimed by exactly one worker — classic work-queue
// elasticity: the pool can be smaller or larger than the shard count, and
// a worker that dies mid-task has its claim lease expire and the task
// redelivered to a peer. Workers train locally and stream updates to the
// "updates" topic, which the aggregator consumes with batched prefetch
// and averages. Only O(100 B) event records cross the broker — weights
// ride the store's data plane — and evict-on-ack garbage-collects every
// consumed blob, so a long-running training loop holds O(1) rounds of
// weights, not O(rounds).
//
// -broker kv runs the same dataflow over a kvstore-backed broker with
// push delivery: trainers waiting for the next round's tasks park in
// server-side blocking waits (one command per delivered task while idle)
// instead of polling, exactly as a cross-process deployment would.
package main

import (
	"context"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"

	"proxystore/internal/connectors/local"
	"proxystore/internal/flox"
	"proxystore/internal/kvstore"
	"proxystore/internal/ml"
	"proxystore/internal/pstream"
	"proxystore/internal/store"
)

func init() {
	// The store's gob serializer moves values as interfaces; concrete
	// payload types must be registered.
	gob.Register(task{})
	gob.Register(update{})
}

const (
	workers  = 3 // trainer pool size — deliberately ≠ shards
	shards   = 4 // training tasks per round
	rounds   = 5
	dataSize = 64
	lr       = 0.02
)

// task is one unit of work: train on shard with these weights. It rides
// the data plane as a gob blob; the event crossing the broker is O(100 B).
type task struct {
	Round   int
	Shard   int
	Weights []byte
}

// update is a worker's result for one task.
type update struct {
	Round   int
	Shard   int
	Weights []byte
}

// worker claims tasks from the shared queue, trains, and streams updates
// back. Which shards a worker ends up training is decided entirely by the
// group's claim race.
func worker(ctx context.Context, id int, arch flox.Arch, st *store.Store, broker pstream.Broker, claimed []int) error {
	cons, err := pstream.NewConsumer[task](ctx, broker, "tasks",
		fmt.Sprintf("w%d", id), pstream.WithGroup("trainers"), pstream.WithEndCount(1))
	if err != nil {
		return err
	}
	defer cons.Close()
	prod := pstream.NewProducer[update](st, broker, "updates",
		pstream.WithEvictOnAck(1)) // only the aggregator reads updates

	for {
		it, err := cons.Next(ctx)
		if errors.Is(err, pstream.ErrEnd) {
			return prod.Close(ctx)
		}
		if err != nil {
			return err
		}
		tk, err := it.Value(ctx) // proxy resolves here, not in transit
		if err != nil {
			return err
		}
		model := arch.NewModel(1)
		if err := model.LoadWeights(tk.Weights); err != nil {
			return err
		}
		// Each shard has its own stable synthetic dataset, whichever
		// worker draws the task.
		for _, s := range ml.SyntheticFashion(dataSize, int64(100+tk.Shard)) {
			model.TrainStep(s.X, s.Label, lr)
		}
		claimed[id]++
		if err := prod.Send(ctx, update{
			Round: tk.Round, Shard: tk.Shard, Weights: model.SerializeWeights(),
		}, nil); err != nil {
			return err
		}
		// Ack only once the update is published: a worker that dies
		// mid-task keeps its claim unacked, so the lease expires and the
		// task is redelivered to a peer. (Ack also evicts the task blob.)
		if err := it.Ack(ctx); err != nil {
			return err
		}
	}
}

func main() {
	brokerKind := flag.String("broker", "mem", "broker: mem | kv (kv = RESP server with push delivery)")
	flag.Parse()
	ctx := context.Background()

	st, err := store.New("fl-store", local.New("fl-conn")) // gob: tasks are structs
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	var inner pstream.Broker
	switch *brokerKind {
	case "mem":
		inner = pstream.NewMem()
	case "kv":
		srv, err := kvstore.NewServer("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		// Push delivery is the default: idle trainers block in server-side
		// waits rather than polling the task queue.
		inner = pstream.NewKV(srv.Addr())
	default:
		log.Fatalf("unknown broker %q", *brokerKind)
	}
	broker := pstream.NewCounting(inner)

	arch := flox.Arch{InputDim: 28 * 28, HiddenDim: 32, Blocks: 2, Classes: 10}
	model := arch.NewModel(1)
	test := ml.SyntheticFashion(200, 999)
	fmt.Printf("model: %d parameters (%d KB of weights), %d shards, %d workers\n",
		model.NumParams(), model.NumParams()*4/1024, shards, workers)
	fmt.Printf("round 0 accuracy: %.1f%%\n", 100*model.Evaluate(test))

	// A failing worker cancels the whole run; otherwise the aggregator
	// would wait forever for an update that is never coming.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	claimed := make([]int, workers)
	var wg sync.WaitGroup
	workerErrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := worker(ctx, i, arch, st, broker, claimed); err != nil {
				workerErrs <- fmt.Errorf("worker %d: %w", i, err)
				cancel()
			}
		}(i)
	}

	// The aggregator's side of the dataflow: task batches out, updates in.
	// The whole trainer group counts as one consumer for evict-on-ack.
	taskProd := pstream.NewProducer[task](st, broker, "tasks",
		pstream.WithEvictOnAck(1))
	updates, err := pstream.NewConsumer[update](ctx, broker, "updates", "aggregator",
		pstream.WithEndCount(workers), pstream.WithWindow(shards))
	if err != nil {
		log.Fatal(err)
	}
	defer updates.Close()

	// die prefers a worker's root-cause error over the aggregator-side
	// cancellation it provokes.
	die := func(err error) {
		select {
		case werr := <-workerErrs:
			log.Fatal(werr)
		default:
			log.Fatal(err)
		}
	}

	for round := 1; round <= rounds; round++ {
		// One batched publish announces the whole round's work queue.
		batch := make([]task, shards)
		for s := range batch {
			batch[s] = task{Round: round, Shard: s, Weights: model.SerializeWeights()}
		}
		if err := taskProd.SendBatch(ctx, batch); err != nil {
			die(err)
		}
		blobs := make([][]byte, 0, shards)
		for len(blobs) < shards {
			u, err := updates.NextValue(ctx) // batched prefetch under the hood
			if err != nil {
				die(err)
			}
			if u.Round != round {
				die(fmt.Errorf("update for round %d arrived during round %d", u.Round, round))
			}
			blobs = append(blobs, u.Weights)
		}
		avg, err := ml.AverageWeights(blobs)
		if err != nil {
			die(err)
		}
		if err := model.LoadWeights(avg); err != nil {
			die(err)
		}
		fmt.Printf("round %d accuracy: %.1f%%\n", round, 100*model.Evaluate(test))
	}
	if err := taskProd.Close(ctx); err != nil { // workers see ErrEnd and stop
		log.Fatal(err)
	}
	wg.Wait()
	close(workerErrs)
	for err := range workerErrs {
		log.Fatal(err)
	}

	total := 0
	for i, n := range claimed {
		fmt.Printf("worker %d trained %d tasks\n", i, n)
		total += n
	}
	if total != rounds*shards {
		log.Fatalf("trainer group worked %d tasks, want %d", total, rounds*shards)
	}
	m := st.Metrics()
	fmt.Printf("data plane:     %d MB of weights through the store (%d puts, %d evicted on ack)\n",
		(m.BytesPut+m.BytesGot)>>20, m.Puts, m.Evicts)
	fmt.Printf("metadata plane: %d KB of events through the broker\n",
		(broker.BytesPublished()+broker.BytesDelivered())>>10)
}
