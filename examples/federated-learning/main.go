// Federated learning over pstream: the paper's §5.5 workload restructured
// as the follow-up ProxyStream pattern — a continuous producer/consumer
// dataflow instead of per-round RPC.
//
// The aggregator publishes each round's global weights to the "global"
// topic; edge devices consume them as lazy proxies, train locally, and
// publish updates to the "updates" topic; the aggregator consumes the
// updates with batched prefetch and averages. Only O(100 B) event records
// cross the broker — weights ride the store's data plane — and evict-on-ack
// garbage-collects every consumed weight blob, so a long-running training
// loop holds O(1) rounds of weights, not O(rounds).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"
	"sync"

	"proxystore/internal/connectors/local"
	"proxystore/internal/flox"
	"proxystore/internal/ml"
	"proxystore/internal/pstream"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

const (
	devices  = 4
	rounds   = 5
	dataSize = 64
	lr       = 0.02
)

// device consumes global weights, trains, and streams updates back.
func device(ctx context.Context, id int, arch flox.Arch, st *store.Store, broker pstream.Broker) error {
	cons, err := pstream.NewConsumer[[]byte](ctx, broker, "global",
		fmt.Sprintf("edge-%d", id), pstream.WithEndCount(1))
	if err != nil {
		return err
	}
	defer cons.Close()
	prod := pstream.NewProducer[[]byte](st, broker, "updates",
		pstream.WithEvictOnAck(1)) // only the aggregator reads updates

	data := ml.SyntheticFashion(dataSize, int64(100+id))
	for {
		it, err := cons.Next(ctx)
		if errors.Is(err, pstream.ErrEnd) {
			return prod.Close(ctx)
		}
		if err != nil {
			return err
		}
		weights, err := it.Value(ctx) // proxy resolves here, not in transit
		if err != nil {
			return err
		}
		model := arch.NewModel(1)
		if err := model.LoadWeights(weights); err != nil {
			return err
		}
		if err := it.Ack(ctx); err != nil { // all devices acked ⇒ round blob evicted
			return err
		}
		for _, s := range data {
			model.TrainStep(s.X, s.Label, lr)
		}
		if err := prod.Send(ctx, model.SerializeWeights(), map[string]string{
			"round":  it.Event.Attr("round"),
			"device": strconv.Itoa(id),
		}); err != nil {
			return err
		}
	}
}

func main() {
	ctx := context.Background()

	st, err := store.New("fl-store", local.New("fl-conn"),
		store.WithSerializer(serial.Raw()))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	broker := pstream.NewCounting(pstream.NewMem())

	arch := flox.Arch{InputDim: 28 * 28, HiddenDim: 32, Blocks: 2, Classes: 10}
	model := arch.NewModel(1)
	test := ml.SyntheticFashion(200, 999)
	fmt.Printf("model: %d parameters (%d KB of weights)\n",
		model.NumParams(), model.NumParams()*4/1024)
	fmt.Printf("round 0 accuracy: %.1f%%\n", 100*model.Evaluate(test))

	// A failing device cancels the whole run; otherwise the aggregator
	// would wait forever for an update that is never coming.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	devErrs := make(chan error, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := device(ctx, i, arch, st, broker); err != nil {
				devErrs <- fmt.Errorf("device %d: %w", i, err)
				cancel()
			}
		}(i)
	}

	// The aggregator's side of the dataflow: global weights out, updates in.
	globalProd := pstream.NewProducer[[]byte](st, broker, "global",
		pstream.WithEvictOnAck(devices))
	updates, err := pstream.NewConsumer[[]byte](ctx, broker, "updates", "aggregator",
		pstream.WithEndCount(devices), pstream.WithWindow(devices))
	if err != nil {
		log.Fatal(err)
	}
	defer updates.Close()

	// die prefers a device's root-cause error over the aggregator-side
	// cancellation it provokes.
	die := func(err error) {
		select {
		case derr := <-devErrs:
			log.Fatal(derr)
		default:
			log.Fatal(err)
		}
	}

	for round := 1; round <= rounds; round++ {
		if err := globalProd.Send(ctx, model.SerializeWeights(), map[string]string{
			"round": strconv.Itoa(round),
		}); err != nil {
			die(err)
		}
		blobs := make([][]byte, 0, devices)
		for len(blobs) < devices {
			w, err := updates.NextValue(ctx) // batched prefetch under the hood
			if err != nil {
				die(err)
			}
			blobs = append(blobs, w)
		}
		avg, err := ml.AverageWeights(blobs)
		if err != nil {
			die(err)
		}
		if err := model.LoadWeights(avg); err != nil {
			die(err)
		}
		fmt.Printf("round %d accuracy: %.1f%%\n", round, 100*model.Evaluate(test))
	}
	if err := globalProd.Close(ctx); err != nil { // devices see ErrEnd and stop
		log.Fatal(err)
	}
	wg.Wait()
	close(devErrs)
	for err := range devErrs {
		log.Fatal(err)
	}

	m := st.Metrics()
	fmt.Printf("data plane:     %d MB of weights through the store (%d puts, %d evicted on ack)\n",
		(m.BytesPut+m.BytesGot)>>20, m.Puts, m.Evicts)
	fmt.Printf("metadata plane: %d KB of events through the broker\n",
		(broker.BytesPublished()+broker.BytesDelivered())>>10)
}
