// Molecular design: the paper's §5.6 workload — a Colmena Thinker steers
// simulations that compute ionization potentials while a surrogate model
// ranks candidates for future work; large task data moves by proxy.
package main

import (
	"context"
	"fmt"
	"log"

	"proxystore/internal/colmena"
	"proxystore/internal/connectors/local"
	"proxystore/internal/molsim"
	"proxystore/internal/serial"
	"proxystore/internal/store"
	"proxystore/internal/workflow"
)

func main() {
	ctx := context.Background()

	engine := workflow.New(workflow.Options{Workers: 8, ChannelBandwidth: 500e6})
	defer engine.Close()
	server := colmena.NewServer(engine, 256)

	st, err := store.New("mol-store", local.New("mol-conn"),
		store.WithSerializer(serial.Raw()))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	candidates := molsim.Candidates(256, 7)

	// Simulation task: compute a molecule's IP (expensively) and return it
	// along with a bulky wavefunction blob, proxied above 1 KB.
	server.RegisterMethod("simulate", func(_ context.Context, in any) (any, error) {
		idx := int(in.([]byte)[0])
		ip := molsim.Simulate(candidates[idx], 100_000)
		blob := make([]byte, 64<<10)
		blob[0] = byte(idx)
		blob[1] = byte(int(ip*10) & 0xff)
		return blob, nil
	})
	server.RegisterStore("simulate", colmena.StorePolicy{
		Store: st, Threshold: 1 << 10, ProxyResults: true,
	})

	// Round 1: simulate a random batch.
	surrogate := molsim.NewSurrogate()
	var mols []molsim.Molecule
	var ips []float64
	for i := 0; i < 32; i++ {
		if err := server.Submit(ctx, "simulate", []byte{byte(i)}, i); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		res := <-server.Results()
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		v, err := colmena.ResolveResult(ctx, res.Value)
		if err != nil {
			log.Fatal(err)
		}
		idx := int(v.([]byte)[0])
		mols = append(mols, candidates[idx])
		ips = append(ips, molsim.TrueIP(candidates[idx]))
	}

	// Train the surrogate and rank the remaining candidates.
	surrogate.Train(mols, ips)
	order := surrogate.Rank(candidates)
	fmt.Println("top-5 candidates by predicted ionization potential:")
	for _, idx := range order[:5] {
		fmt.Printf("  molecule %3d: predicted %.3f eV, true %.3f eV\n",
			idx, surrogate.Predict(candidates[idx]), molsim.TrueIP(candidates[idx]))
	}
	m := st.Metrics()
	fmt.Printf("task data proxied: %d proxies, %d KB through the store\n",
		m.Proxies, m.BytesPut>>10)
}
