// MultiConnector: policy-based routing across mediated channels (paper
// §4.3) — small objects to a low-latency in-memory channel, large objects
// to a bulk channel, all behind a single Store.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"proxystore/internal/connectors/file"
	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/multi"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

func main() {
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "multi-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	bulk, err := file.New(dir)
	if err != nil {
		log.Fatal(err)
	}

	router, err := multi.New(
		multi.Child{
			Name:      "fast-memory",
			Connector: local.New("multi-fast"),
			Policy:    multi.Policy{MaxSize: 64 << 10, Priority: 10, Tags: []string{"intra-site"}},
		},
		multi.Child{
			Name:      "bulk-disk",
			Connector: bulk,
			Policy:    multi.Policy{Priority: 5, Tags: []string{"persistent"}},
		},
		multi.Child{
			Name:      "fallback",
			Connector: local.New("multi-fallback"),
			Policy:    multi.Policy{Priority: -1},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	st, err := store.New("multi-store", router, store.WithSerializer(serial.Raw()))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	for _, size := range []int{100, 1 << 10, 256 << 10, 4 << 20} {
		key, err := st.PutObject(ctx, make([]byte, size))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d bytes -> routed to %q\n", size, key.Attr("multi_child"))
	}

	// Tag constraints steer placement explicitly.
	key, err := router.PutTagged(ctx, make([]byte, 100), []string{"persistent"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiny object with 'persistent' tag -> %q\n", key.Attr("multi_child"))

	// Proxies mint and resolve through the router transparently.
	p, err := store.NewProxy(ctx, st, []byte("routed and proxied"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proxied value: %q\n", p.MustValue())
}
