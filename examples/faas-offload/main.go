// FaaS offload, stream-backed: the task plane runs over pstream instead
// of a cloud service. Submissions are O(100 B) events on a task topic
// claimed by the endpoint's worker pool (a consumer group over the
// KVBroker, parked in server-side blocking waits); bulk arguments and
// results ride the redis data plane. The classic cloud-routed executor is
// kept for contrast: it rejects the same payload at its 5 MB service
// limit, while the stream executor has no service in the data path at
// all.
package main

import (
	"context"
	"fmt"
	"log"

	"proxystore/internal/connectors/redisc"
	"proxystore/internal/faas"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
	"proxystore/internal/pstream"
	"proxystore/internal/store"
)

func main() {
	ctx := context.Background()

	// A mini Redis server carries BOTH planes: the pstream metadata log
	// (task/result events) and the bulk bytes.
	kv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer kv.Close()

	// Default gob serializer: task payloads are structs, not raw bytes.
	st, err := store.New("offload-store", redisc.New(kv.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// CountingBroker makes the headline property visible: how many bytes
	// the metadata plane actually moved.
	broker := pstream.NewCounting(pstream.NewKV(kv.Addr()))
	defer broker.Close()

	faas.RegisterFunction("my_function", func(ctx context.Context, args []any) (any, error) {
		data := args[0].([]byte) // arrived via the store, not the broker
		return fmt.Sprintf("worker saw %d bytes", len(data)), nil
	})

	// The stream-backed fabric: a worker pool claiming tasks from the
	// endpoint's topic as a consumer group.
	ep := faas.StartStreamEndpoint(st, broker, "theta-ep", 4)
	defer ep.Close()
	gce, err := faas.NewStreamExecutor(st, broker, "theta-ep")
	if err != nil {
		log.Fatal(err)
	}
	defer gce.Close()

	// 8 MB of data, submitted by value — larger than Globus Compute's
	// 5 MB payload cap, but here the task event is O(100 B) and the bytes
	// ride the bulk plane.
	data := make([]byte, 8<<20)
	fut, err := gce.Submit(ctx, "my_function", data)
	if err != nil {
		log.Fatal(err)
	}
	result, err := fut.Result(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("task result:", result)
	fmt.Printf("broker moved %d bytes of metadata for %d bytes of arguments\n",
		broker.BytesPublished()+broker.BytesDelivered(), len(data))

	// The same submission through the classic cloud-routed executor is
	// rejected at the service limit.
	cloud := faas.NewCloud(netsim.Testbed(100), netsim.SiteCloud)
	classic := faas.NewExecutor(cloud, "theta-ep", netsim.SiteThetaLogin)
	if _, err := classic.Submit(ctx, "my_function", data); err != nil {
		fmt.Println("classic by-value submission:", err)
	}
}
