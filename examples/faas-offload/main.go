// FaaS offload: the Go equivalent of the paper's Listing 2 — submit a task
// to a Globus-Compute-like executor, passing inputs by proxy so the data
// bypasses the cloud service (and its 5 MB payload limit).
package main

import (
	"context"
	"fmt"
	"log"

	"proxystore/internal/connectors/redisc"
	"proxystore/internal/faas"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
	"proxystore/internal/proxy"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

func main() {
	ctx := context.Background()
	net := netsim.Testbed(100) // compress WAN time 100x

	// A mini Redis server is the mediated channel.
	kv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer kv.Close()

	st, err := store.New("offload-store", redisc.New(kv.Addr()),
		store.WithSerializer(serial.Raw()))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// The FaaS fabric: cloud service + a compute endpoint on Theta.
	cloud := faas.NewCloud(net, netsim.SiteCloud)
	ep := faas.StartEndpoint(cloud, "theta-ep", netsim.SiteTheta, 4)
	defer ep.Close()
	gce := faas.NewExecutor(cloud, "theta-ep", netsim.SiteThetaLogin)

	proxy.RegisterGob[[]byte]()
	faas.RegisterFunction("my_function", func(ctx context.Context, args []any) (any, error) {
		p := args[0].(*proxy.Proxy[[]byte])
		data, err := p.Value(ctx) // resolved on the worker, not via the cloud
		if err != nil {
			return nil, err
		}
		return fmt.Sprintf("worker saw %d bytes", len(data)), nil
	})

	// 8 MB of data: larger than the 5 MB cloud payload limit, but the task
	// payload is just the proxy.
	data := make([]byte, 8<<20)
	p, err := store.NewProxy(ctx, st, data)
	if err != nil {
		log.Fatal(err)
	}

	fut, err := gce.Submit(ctx, "my_function", p)
	if err != nil {
		log.Fatal(err)
	}
	result, err := fut.Result(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("task result:", result)

	// The same submission by value is rejected by the service.
	if _, err := gce.Submit(ctx, "my_function", data); err != nil {
		fmt.Println("by-value submission:", err)
	}
}
