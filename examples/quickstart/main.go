// Quickstart: the Go equivalent of the paper's Listing 1 — create a Store
// over a connector, proxy an object, and pass the proxy to a function that
// resolves it just in time.
package main

import (
	"context"
	"fmt"
	"log"

	"proxystore/internal/connectors/local"
	"proxystore/internal/proxy"
	"proxystore/internal/store"
)

// myFunction consumes a proxy exactly where it would consume the value: the
// first Value call resolves the target from the store transparently.
func myFunction(ctx context.Context, p *proxy.Proxy[[]byte]) error {
	data, err := p.Value(ctx) // resolved from "my-store" on first use
	if err != nil {
		return err
	}
	fmt.Printf("resolved %d bytes: %q\n", len(data), data)
	return nil
}

func main() {
	ctx := context.Background()

	// Store('my-store', Connector(...)) — dependency injection.
	st, err := store.New("my-store", local.New("quickstart"))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// p = store.proxy(my_object)
	myObject := []byte("hello, proxystore")
	p, err := store.NewProxy(ctx, st, myObject)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proxy resolved before use? %v\n", p.Resolved())

	// The proxy serializes to its factory only — a few hundred bytes no
	// matter how large the target is.
	wire, err := p.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized proxy: %d bytes (target: %d bytes)\n", len(wire), len(myObject))

	// A receiving process reconstructs the proxy and resolves it lazily.
	var received proxy.Proxy[[]byte]
	if err := received.UnmarshalBinary(wire); err != nil {
		log.Fatal(err)
	}
	if err := myFunction(ctx, &received); err != nil {
		log.Fatal(err)
	}

	// Evict-on-resolve for write-once/read-once intermediates.
	ephemeral, err := store.NewProxy(ctx, st, []byte("read me once"), store.WithEvict())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ephemeral value: %q\n", ephemeral.MustValue())
	conn := st.Connector().(*local.Connector)
	fmt.Printf("objects left in connector after evict-on-resolve: %d\n", conn.Len()-1)
}
