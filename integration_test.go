// Package main_test's integration tests exercise the full system across
// package boundaries: proxies minted by one store resolving through
// reconstructed stores, FaaS tasks consuming proxies backed by every major
// connector family, and the MultiConnector routing a workflow's objects.
package main_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"proxystore/internal/connectors/endpointc"
	"proxystore/internal/connectors/local"
	"proxystore/internal/connectors/multi"
	"proxystore/internal/connectors/redisc"
	"proxystore/internal/endpoint"
	"proxystore/internal/faas"
	"proxystore/internal/kvstore"
	"proxystore/internal/netsim"
	"proxystore/internal/proxy"
	"proxystore/internal/relay"
	"proxystore/internal/serial"
	"proxystore/internal/store"
)

func init() {
	proxy.RegisterGob[[]byte]()
	faas.RegisterFunction("itest.len", func(ctx context.Context, args []any) (any, error) {
		p := args[0].(*proxy.Proxy[[]byte])
		data, err := p.Value(ctx)
		if err != nil {
			return nil, err
		}
		return len(data), nil
	})
}

// TestEndToEndRedisProxyThroughFaaS: produce via Redis-backed store, ship
// the proxy through the FaaS fabric, resolve on the worker.
func TestEndToEndRedisProxyThroughFaaS(t *testing.T) {
	kv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("kvstore.NewServer: %v", err)
	}
	defer kv.Close()
	st, err := store.New("itest-redis", redisc.New(kv.Addr()), store.WithSerializer(serial.Raw()))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	defer store.Unregister("itest-redis")

	net := netsim.Testbed(2000)
	cloud := faas.NewCloud(net, netsim.SiteCloud)
	ep := faas.StartEndpoint(cloud, "itest-ep", netsim.SiteTheta, 2)
	defer ep.Close()
	exec := faas.NewExecutor(cloud, "itest-ep", netsim.SiteThetaLogin)

	ctx := context.Background()
	payload := bytes.Repeat([]byte("e2e"), 100_000)
	p, err := store.NewProxy(ctx, st, payload)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	fut, err := exec.Submit(ctx, "itest.len", p)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v, err := fut.Result(ctx)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if v.(int) != len(payload) {
		t.Fatalf("worker saw %v bytes, want %d", v, len(payload))
	}
}

// TestEndToEndEndpointPeeringProxy: produce on one PS-endpoint, resolve a
// proxy through another endpoint's peer connection.
func TestEndToEndEndpointPeeringProxy(t *testing.T) {
	r, err := relay.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("relay.NewServer: %v", err)
	}
	defer r.Close()
	epA, err := endpoint.Start("127.0.0.1:0", r.Addr(), endpoint.Options{UUID: "itest-a"})
	if err != nil {
		t.Fatalf("endpoint.Start: %v", err)
	}
	defer epA.Close()
	epB, err := endpoint.Start("127.0.0.1:0", r.Addr(), endpoint.Options{UUID: "itest-b"})
	if err != nil {
		t.Fatalf("endpoint.Start: %v", err)
	}
	defer epB.Close()

	prod, err := store.New("itest-ep-prod", endpointc.New(epA.Addr(), epA.UUID(), "", ""),
		store.WithSerializer(serial.Raw()))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	defer store.Unregister("itest-ep-prod")
	cons, err := store.New("itest-ep-cons", endpointc.New(epB.Addr(), epB.UUID(), "", ""),
		store.WithSerializer(serial.Raw()))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	defer store.Unregister("itest-ep-cons")

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	payload := bytes.Repeat([]byte("peer"), 50_000)
	key, err := prod.PutObject(ctx, payload)
	if err != nil {
		t.Fatalf("PutObject: %v", err)
	}
	p := store.ProxyFromKey[[]byte](cons, key)
	got, err := p.Value(ctx)
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("peered proxy resolution corrupted the object")
	}
}

// TestEndToEndMultiConnectorProxies: a single store routes small objects to
// memory and large ones to Redis; proxies of both resolve after traveling.
func TestEndToEndMultiConnectorProxies(t *testing.T) {
	kv, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("kvstore.NewServer: %v", err)
	}
	defer kv.Close()

	router, err := multi.New(
		multi.Child{Name: "mem", Connector: local.New("itest-multi-mem"),
			Policy: multi.Policy{MaxSize: 1 << 10, Priority: 10}},
		multi.Child{Name: "redis", Connector: redisc.New(kv.Addr()),
			Policy: multi.Policy{Priority: 1}},
	)
	if err != nil {
		t.Fatalf("multi.New: %v", err)
	}
	st, err := store.New("itest-multi", router, store.WithSerializer(serial.Raw()))
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	defer store.Unregister("itest-multi")

	ctx := context.Background()
	for _, tc := range []struct {
		size  int
		child string
	}{
		{100, "mem"},
		{100_000, "redis"},
	} {
		p, err := store.NewProxy(ctx, st, make([]byte, tc.size))
		if err != nil {
			t.Fatalf("NewProxy(%d): %v", tc.size, err)
		}
		// Serialize + deserialize the proxy (travel between "processes").
		wire, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		var travelled proxy.Proxy[[]byte]
		if err := travelled.UnmarshalBinary(wire); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		got, err := travelled.Value(ctx)
		if err != nil {
			t.Fatalf("Value(%d): %v", tc.size, err)
		}
		if len(got) != tc.size {
			t.Fatalf("resolved %d bytes, want %d", len(got), tc.size)
		}
	}
}
